package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tiny returns a configuration small enough that the full experiment set
// runs in seconds: 128-px grid, 8 kernels, 1/20 of the paper budgets.
func tiny(t *testing.T) Config {
	t.Helper()
	return Config{N: 128, FieldNM: 512, Kernels: 8, IterDiv: 20}
}

func TestConfigValidate(t *testing.T) {
	good := tiny(t)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.N = 100 },
		func(c *Config) { c.N = 32 },
		func(c *Config) { c.FieldNM = 0 },
		func(c *Config) { c.Kernels = 0 },
		func(c *Config) { c.IterDiv = 0 },
	} {
		c := tiny(t)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	c := Harness()
	if c.PixelNM() != 4 {
		t.Errorf("harness pixel %g, want 4", c.PixelNM())
	}
	sp, thr := c.EPEParams()
	if sp != 10 || thr != 4 {
		t.Errorf("harness EPE params %d/%d, want 10/4", sp, thr)
	}
	m1, m2 := c.RegionMargins()
	if m1 != 15 || m2 != 50 {
		t.Errorf("harness margins %d/%d, want 15/50", m1, m2)
	}
	if Paper().PixelNM() != 1 {
		t.Error("paper scale is not 1 nm/px")
	}
}

func TestProcessGridTooSmallForS8(t *testing.T) {
	c := Config{N: 64, FieldNM: 2048, Kernels: 4, IterDiv: 1}
	if _, err := c.Process(); err == nil {
		t.Error("N=64 with P=35 kernels accepted (s=8 stage would be impossible)")
	}
}

func TestForwardTimingShape(t *testing.T) {
	c := tiny(t)
	tb, err := ForwardTiming(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("timing table has %d rows", len(tb.Rows))
	}
	parse := func(row int) float64 {
		var v float64
		if _, err := fmtSscan(tb.Rows[row][1], &v); err != nil {
			t.Fatalf("row %d: %v", row, err)
		}
		return v
	}
	eq3, eq7, eq8 := parse(0), parse(1), parse(2)
	if !(eq8 <= eq7*1.5 && eq7 < eq3) {
		t.Errorf("timing ordering violated: eq3=%g eq7=%g eq8=%g", eq3, eq7, eq8)
	}
}

func TestIterationTimeShape(t *testing.T) {
	c := tiny(t)
	tb, err := IterationTime(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// Full-res per-iteration time must exceed low-res.
	var low, full float64
	if _, err := fmtSscan(tb.Rows[0][2], &low); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tb.Rows[2][2], &full); err != nil {
		t.Fatal(err)
	}
	if full <= low {
		t.Errorf("full-res iteration (%g ms) not slower than low-res (%g ms)", full, low)
	}
}

func TestTable1Runs(t *testing.T) {
	tb, err := Table1(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "low-res ILT") {
		t.Error("missing ablation row")
	}
}

func TestTable2WithArtifacts(t *testing.T) {
	c := tiny(t)
	c.OutDir = t.TempDir()
	tb, err := Table2(c)
	if err != nil {
		t.Fatal(err)
	}
	// 10 cases × 2 methods + 2 averages + 4 paper rows + 2 ratios.
	if len(tb.Rows) != 10*2+2+len(PaperTable2)+2 {
		t.Errorf("table2 has %d rows", len(tb.Rows))
	}
	if _, err := os.Stat(filepath.Join(c.OutDir, "table2.csv")); err != nil {
		t.Errorf("table2.csv missing: %v", err)
	}
}

func TestTable3WithLevelSetBaseline(t *testing.T) {
	c := tiny(t)
	c.WithBaselines = true
	tb, err := Table3(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "GLS-ILT-style") {
		t.Error("level-set baseline rows missing")
	}
}

func TestTable4Runs(t *testing.T) {
	tb, err := Table4(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "case11") || !strings.Contains(tb.String(), "case20") {
		t.Error("extended cases missing")
	}
}

func TestFiguresProduceArtifacts(t *testing.T) {
	c := tiny(t)
	c.OutDir = t.TempDir()
	wantFiles := map[string][]string{
		"fig4": {"fig4_tr00_mask.png", "fig4_tr05_mask.png"},
		"fig5": {"fig5_sigmoid.csv"},
		"fig6": {"fig6_pool3_mask.png", "fig6_pool0_mask.png"},
		"fig7": {"fig7_option1_mask.png", "fig7_option2_region.png"},
		"fig8": {"fig8_target.png", "fig8_binarized.png", "fig8_mask.png", "fig8_wafer.png"},
	}
	for name, files := range wantFiles {
		tb, err := Run(c, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
		for _, f := range files {
			if _, err := os.Stat(filepath.Join(c.OutDir, f)); err != nil {
				t.Errorf("%s: artifact %s missing", name, f)
			}
		}
	}
}

func TestFig8AllViasPrint(t *testing.T) {
	c := tiny(t)
	c.IterDiv = 5 // a little more budget so the via flow converges
	tb, err := Fig8(c)
	if err != nil {
		t.Fatal(err)
	}
	var total, printed string
	for _, row := range tb.Rows {
		switch row[0] {
		case "vias in target":
			total = row[1]
		case "vias printed":
			printed = row[1]
		}
	}
	if total == "" || total != printed {
		t.Errorf("vias printed %s of %s — the paper's via acceptance bar", printed, total)
	}
}

func TestRunUnknownName(t *testing.T) {
	if _, err := Run(tiny(t), "table9"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAllStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll covers every experiment; skipped in -short mode")
	}
	c := tiny(t)
	var sb strings.Builder
	tables, err := RunAll(c, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(Names) {
		t.Errorf("%d tables, want %d", len(tables), len(Names))
	}
	for _, name := range []string{"Table I", "Table II", "Table III", "Table IV", "Fig. 8"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("output missing %q", name)
		}
	}
}

// fmtSscan parses the leading float of a table cell.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestWindowMonotoneAndImproved(t *testing.T) {
	c := tiny(t)
	c.OutDir = t.TempDir()
	tb, err := Window(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(tb.Rows))
	}
	// Both ladders are monotone in the dose excursion (the physical
	// invariant; "optimized beats raw" needs a real iteration budget and is
	// asserted by the harness run recorded in EXPERIMENTS.md).
	var prevRaw, prevOpt float64
	for i, row := range tb.Rows {
		var raw, opt float64
		if _, err := fmtSscan(row[1], &raw); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(row[2], &opt); err != nil {
			t.Fatal(err)
		}
		if i > 0 && (raw < prevRaw || opt < prevOpt) {
			t.Errorf("PVB ladder not monotone at row %d", i)
		}
		prevRaw, prevOpt = raw, opt
	}
	if _, err := os.Stat(filepath.Join(c.OutDir, "window_pvb.csv")); err != nil {
		t.Error("window_pvb.csv missing")
	}
}

func TestConvergenceAblation(t *testing.T) {
	c := tiny(t)
	c.OutDir = t.TempDir()
	tb, err := Convergence(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tb.Rows))
	}
	// Full-res-only must cost more wall-clock than multi-level.
	var multi, full float64
	if _, err := fmtSscan(tb.Rows[0][4], &multi); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tb.Rows[2][4], &full); err != nil {
		t.Fatal(err)
	}
	if full <= multi {
		t.Errorf("full-res-only time %g not above multi-level %g", full, multi)
	}
	if _, err := os.Stat(filepath.Join(c.OutDir, "convergence.csv")); err != nil {
		t.Error("convergence.csv missing")
	}
}

func TestViaSweepAllPrint(t *testing.T) {
	c := tiny(t)
	c.IterDiv = 5 // the via flow needs a real budget to converge
	tb, err := ViaSweep(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows, want 3 (15/5 clamped to minimum)", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] != row[2] {
			t.Errorf("%s: printed %s of %s vias", row[0], row[2], row[1])
		}
	}
}

func TestVerifyClaimsAtModerateBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("claim verification needs a real iteration budget")
	}
	c := tiny(t)
	c.IterDiv = 1 // claims 5/6 are about converged behaviour, not sketches
	tb, err := Verify(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[2] != "PASS" {
			t.Errorf("claim failed: %s (%s)", row[0], row[1])
		}
	}
}

func TestSourcesAblation(t *testing.T) {
	c := tiny(t)
	tb, err := Sources(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tb.Rows))
	}
	seen := map[string]bool{}
	for _, row := range tb.Rows {
		seen[row[0]] = true
	}
	for _, want := range []string{"annular", "circular", "dipole", "quasar"} {
		if !seen[want] {
			t.Errorf("missing source shape %q", want)
		}
	}
}

func TestBossungTable(t *testing.T) {
	c := tiny(t)
	c.OutDir = t.TempDir()
	tb, err := Bossung(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("%d rows, want 10 (5 doses × 2 focus)", len(tb.Rows))
	}
	// CD monotone in dose within each focus block, for both columns.
	for block := 0; block < 2; block++ {
		var prevRaw, prevOpt float64
		for i := 0; i < 5; i++ {
			row := tb.Rows[block*5+i]
			var raw, opt float64
			if _, err := fmtSscan(row[2], &raw); err != nil {
				t.Fatal(err)
			}
			if _, err := fmtSscan(row[3], &opt); err != nil {
				t.Fatal(err)
			}
			if i > 0 && (raw < prevRaw || opt < prevOpt) {
				t.Errorf("CD not monotone in dose at block %d row %d", block, i)
			}
			prevRaw, prevOpt = raw, opt
		}
	}
	if _, err := os.Stat(filepath.Join(c.OutDir, "bossung.csv")); err != nil {
		t.Error("bossung.csv missing")
	}
}

func TestKernelsAblation(t *testing.T) {
	c := tiny(t)
	tb, err := Kernels(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 { // tiny config has 8 kernels → counts 2, 4, 8
		t.Fatalf("%d rows, want 3", len(tb.Rows))
	}
	// Energy capture is non-decreasing in N_k; the error column hits ~0 at
	// the reference count.
	var prevCap float64
	for i, row := range tb.Rows {
		var cap1 float64
		if _, err := fmtSscan(row[1], &cap1); err != nil {
			t.Fatal(err)
		}
		if cap1 < prevCap-1e-9 {
			t.Errorf("energy capture decreased at row %d", i)
		}
		prevCap = cap1
	}
	var lastErr float64
	if _, err := fmtSscan(tb.Rows[len(tb.Rows)-1][2], &lastErr); err != nil {
		t.Fatal(err)
	}
	if lastErr != 0 {
		t.Errorf("self-reference error %g, want 0", lastErr)
	}
}
