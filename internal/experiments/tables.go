package experiments

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/litho"
	"repro/internal/report"
)

// Table1 reproduces the ablation of Section IV-A on case1: 100 iterations
// (divided by IterDiv) of low-resolution ILT (s = 4), high-resolution ILT
// (s = 4) and ILT without downsampling, all at learning rate 1. The paper's
// qualitative claims: low-res ≈ 18× faster than high-res; high-res ≈
// no-downsampling runtime with far fewer shots; no-downsampling has the
// lowest L2 but unacceptable #shots.
func Table1(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cs, err := c.m1Case(1)
	if err != nil {
		return nil, err
	}
	iters := maxInt(1, 100/c.IterDiv)

	type variant struct {
		name   string
		stages []core.Stage
		smooth int
	}
	variants := []variant{
		{"low-res ILT (s=4)", []core.Stage{{Scale: 4, Iters: iters}}, 3},
		{"high-res ILT (s=4)", []core.Stage{{Scale: 4, Iters: iters, HighRes: true}}, 0},
		{"ILT w/o downsampling", []core.Stage{{Scale: 1, Iters: iters}}, 0},
	}

	t := report.NewTable(
		fmt.Sprintf("Table I — downsampling ablation on case1 (%d iterations, lr=1, N=%d)", iters, c.N),
		"method", "L2 (nm²)", "PVB (nm²)", "#shots", "ILT time (s)", "ms/iter")
	var times []float64
	for _, v := range variants {
		c.logf("table1: %s", v.name)
		opts := core.DefaultOptions(p)
		opts.SmoothWindow = v.smooth
		o, err := core.New(opts, cs.Target)
		if err != nil {
			return nil, err
		}
		res, err := o.Run(context.Background(), v.stages)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", v.name, err)
		}
		rep, err := c.evaluateMask(p, res.Mask, cs.Target)
		if err != nil {
			return nil, err
		}
		times = append(times, res.ILTSeconds)
		t.Add(v.name, report.F(rep.L2, 0), report.F(rep.PVB, 0), report.I(rep.Shots),
			report.F(res.ILTSeconds, 3), report.F(res.ILTSeconds/float64(res.Iterations)*1000, 2))
	}
	if len(times) == 3 && times[0] > 0 {
		t.Note("high-res / low-res iteration-time ratio: %.1f× (paper: ≈18×)", times[1]/times[0])
		t.Note("no-downsampling / high-res time ratio: %.2f× (paper: ≈1×)", times[2]/times[1])
	}
	if c.OutDir != "" {
		if err := t.SaveCSV(filepath.Join(c.OutDir, "table1.csv")); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// suiteTable runs a method set over a case suite and renders a paper-style
// table: one row per (case, method), Average rows, paper reference rows,
// and ratio-vs-Our-exact rows.
func (c Config) suiteTable(title string, cases []bench.Case, p *litho.Process,
	methods []string, run func(cs bench.Case, method string) (Measured, error),
	paperRows []PaperAvg, csvName string) (*report.Table, error) {

	t := report.NewTable(title,
		"case", "method", "L2 (nm²)", "PVB (nm²)", "EPE", "#shots", "TAT (s)")
	sums := make(map[string]*PaperAvg, len(methods))
	for _, m := range methods {
		sums[m] = &PaperAvg{Method: m}
	}
	for _, cs := range cases {
		for _, m := range methods {
			c.logf("%s: %s %s", csvName, cs.Name, m)
			meas, err := run(cs, m)
			if err != nil {
				return nil, fmt.Errorf("%s / %s: %w", cs.Name, m, err)
			}
			r := meas.Report
			t.Add(cs.Name, m, report.F(r.L2, 0), report.F(r.PVB, 0),
				report.I(r.EPE), report.I(r.Shots), report.F(r.TAT, 2))
			s := sums[m]
			s.L2 += r.L2
			s.PVB += r.PVB
			s.EPE += float64(r.EPE)
			s.Shots += float64(r.Shots)
			s.TAT += r.TAT
		}
	}
	nc := float64(len(cases))
	var ourExact *PaperAvg
	for _, m := range methods {
		s := sums[m]
		s.L2 /= nc
		s.PVB /= nc
		s.EPE /= nc
		s.Shots /= nc
		s.TAT /= nc
		t.Add("Average", m, report.F(s.L2, 1), report.F(s.PVB, 1),
			report.F(s.EPE, 1), report.F(s.Shots, 1), report.F(s.TAT, 2))
		if m == "Our-exact" {
			ourExact = s
		}
	}
	for _, pr := range paperRows {
		epe := "-"
		if pr.EPE >= 0 {
			epe = report.F(pr.EPE, 1)
		}
		t.Add("Paper avg", pr.Method, report.F(pr.L2, 1), report.F(pr.PVB, 1),
			epe, report.F(pr.Shots, 1), report.F(pr.TAT, 2))
	}
	if ourExact != nil {
		for _, m := range methods {
			s := sums[m]
			t.Add("Ratio", m, report.Ratio(s.L2, ourExact.L2), report.Ratio(s.PVB, ourExact.PVB),
				report.Ratio(s.EPE, ourExact.EPE), report.Ratio(s.Shots, ourExact.Shots),
				report.Ratio(s.TAT, ourExact.TAT))
		}
	}
	t.Note("measured on synthetic %d-px cases over a %.0f nm field; paper rows are the published averages on the real contest layouts (absolute numbers are not comparable; relative ordering is)", c.N, c.FieldNM)
	if c.OutDir != "" {
		if err := t.SaveCSV(filepath.Join(c.OutDir, csvName+".csv")); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Table2 reproduces Table II: the ten M1 cases under region option 1, with
// the A2-ILT-style baseline when WithBaselines is set.
func Table2(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cases, err := bench.M1Suite(c.N, c.FieldNM)
	if err != nil {
		return nil, err
	}
	methods := []string{"Our-fast", "Our-exact"}
	if c.WithBaselines {
		methods = append([]string{"A2-ILT-style (ours)"}, methods...)
	}
	run := func(cs bench.Case, method string) (Measured, error) {
		opt1, _, err := c.regions(cs.Target)
		if err != nil {
			return Measured{}, err
		}
		switch method {
		case "Our-fast":
			return c.runRecipe(p, method, cs.Target, core.FastM1(), opt1, 0)
		case "Our-exact":
			return c.runRecipe(p, method, cs.Target, core.ExactM1(), opt1, 0)
		default:
			return c.runAttention(p, cs.Target, opt1)
		}
	}
	return c.suiteTable(
		fmt.Sprintf("Table II — ICCAD 2013 M1 cases, region option 1 (N=%d)", c.N),
		cases, p, methods, run, PaperTable2, "table2")
}

// Table3 reproduces Table III: the same cases under region option 2, with
// the GLS-ILT-style level-set baseline when WithBaselines is set.
func Table3(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cases, err := bench.M1Suite(c.N, c.FieldNM)
	if err != nil {
		return nil, err
	}
	methods := []string{"Our-fast", "Our-exact"}
	if c.WithBaselines {
		methods = append([]string{"GLS-ILT-style (ours)"}, methods...)
	}
	run := func(cs bench.Case, method string) (Measured, error) {
		_, opt2, err := c.regions(cs.Target)
		if err != nil {
			return Measured{}, err
		}
		switch method {
		case "Our-fast":
			return c.runRecipe(p, method, cs.Target, core.FastM1(), opt2, 0)
		case "Our-exact":
			return c.runRecipe(p, method, cs.Target, core.ExactM1(), opt2, 0)
		default:
			return c.runLevelSet(p, cs.Target, opt2)
		}
	}
	return c.suiteTable(
		fmt.Sprintf("Table III — ICCAD 2013 M1 cases, region option 2 (N=%d)", c.N),
		cases, p, methods, run, PaperTable3, "table3")
}

// Table4 reproduces Table IV: the denser extended cases 11–20 under region
// option 1, with conventional pixel ILT (the non-learned core of
// Neural-ILT's refinement loop) when WithBaselines is set.
func Table4(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cases, err := bench.ExtendedSuite(c.N, c.FieldNM)
	if err != nil {
		return nil, err
	}
	methods := []string{"Our-fast", "Our-exact"}
	if c.WithBaselines {
		methods = append([]string{"Pixel-ILT"}, methods...)
	}
	run := func(cs bench.Case, method string) (Measured, error) {
		opt1, _, err := c.regions(cs.Target)
		if err != nil {
			return Measured{}, err
		}
		switch method {
		case "Our-fast":
			return c.runRecipe(p, method, cs.Target, core.FastM1(), opt1, 0)
		case "Our-exact":
			return c.runRecipe(p, method, cs.Target, core.ExactM1(), opt1, 0)
		default:
			return c.runPixel(p, cs.Target, opt1, maxInt(1, 100/c.IterDiv))
		}
	}
	return c.suiteTable(
		fmt.Sprintf("Table IV — extended cases 11–20, region option 1 (N=%d)", c.N),
		cases, p, methods, run, PaperTable4, "table4")
}
