package experiments

import (
	"context"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/mask"
	"repro/internal/metrics"
	"repro/internal/post"
)

// Measured is one evaluated method run: the contest metrics in nm² plus the
// TAT split the paper reports (ILT iterations vs post-processing).
type Measured struct {
	Method  string
	Report  metrics.Report // areas in nm²
	ILTSec  float64
	PostSec float64
	Result  *core.Result // nil for non-core baselines
	Mask    *grid.Mat    // final cleaned mask
}

// evaluateMask runs the contest evaluation and scales areas to nm².
func (c Config) evaluateMask(p *litho.Process, m, target *grid.Mat) (metrics.Report, error) {
	spacing, thr := c.EPEParams()
	return evaluateWith(p, m, target, spacing, thr, c.PixelNM())
}

// evaluateWith is evaluateMask for an explicit process (the sources
// ablation rebuilds kernels per shape).
func evaluateWith(p *litho.Process, m, target *grid.Mat, spacing, thr int, pixelNM float64) (metrics.Report, error) {
	rep, err := metrics.Evaluate(p, m, target, spacing, thr)
	if err != nil {
		return rep, err
	}
	return rep.Scale(pixelNM), nil
}

// runRecipe executes a multi-level ILT recipe (budgets divided by IterDiv),
// post-processes the mask, and evaluates it.
func (c Config) runRecipe(p *litho.Process, method string, target *grid.Mat, stages []core.Stage, region *grid.Mat, patience int) (Measured, error) {
	opts := core.DefaultOptions(p)
	opts.Region = region
	opts.Patience = patience
	o, err := core.New(opts, target)
	if err != nil {
		return Measured{}, fmt.Errorf("%s: %w", method, err)
	}
	res, err := o.Run(context.Background(), core.ScaleStages(stages, c.IterDiv))
	if err != nil {
		return Measured{}, fmt.Errorf("%s: %w", method, err)
	}
	cleaned := post.Clean(res.Mask, target, post.DefaultOptions(c.PixelNM()))
	rep, err := c.evaluateMask(p, cleaned.Mask, target)
	if err != nil {
		return Measured{}, fmt.Errorf("%s: %w", method, err)
	}
	rep.TAT = res.ILTSeconds + cleaned.Seconds
	return Measured{
		Method: method, Report: rep,
		ILTSec: res.ILTSeconds, PostSec: cleaned.Seconds,
		Result: res, Mask: cleaned.Mask,
	}, nil
}

// runAttention measures the A2-ILT-style baseline.
func (c Config) runAttention(p *litho.Process, target *grid.Mat, region *grid.Mat) (Measured, error) {
	iters := maxInt(1, 100/c.IterDiv)
	band := maxInt(2, int(24/c.PixelNM()))
	res, err := baselines.AttentionILT(p, target, iters, band, region)
	if err != nil {
		return Measured{}, err
	}
	rep, err := c.evaluateMask(p, res.Mask, target)
	if err != nil {
		return Measured{}, err
	}
	rep.TAT = res.ILTSeconds
	return Measured{Method: "A2-ILT-style (ours)", Report: rep, ILTSec: res.ILTSeconds, Result: res, Mask: res.Mask}, nil
}

// runLevelSet measures the GLS-ILT-style baseline.
func (c Config) runLevelSet(p *litho.Process, target *grid.Mat, region *grid.Mat) (Measured, error) {
	iters := maxInt(1, 100/c.IterDiv)
	res, err := baselines.LevelSetILT(baselines.LevelSetOptions{
		Process: p, Iters: iters, Region: region,
	}, target)
	if err != nil {
		return Measured{}, err
	}
	rep, err := c.evaluateMask(p, res.Mask, target)
	if err != nil {
		return Measured{}, err
	}
	rep.TAT = res.ILTSeconds
	return Measured{Method: "GLS-ILT-style (ours)", Report: rep, ILTSec: res.ILTSeconds, Mask: res.Mask}, nil
}

// runPixel measures conventional full-resolution pixel ILT.
func (c Config) runPixel(p *litho.Process, target *grid.Mat, region *grid.Mat, iters int) (Measured, error) {
	res, err := baselines.PixelILT(p, target, iters, region)
	if err != nil {
		return Measured{}, err
	}
	rep, err := c.evaluateMask(p, res.Mask, target)
	if err != nil {
		return Measured{}, err
	}
	rep.TAT = res.ILTSeconds
	return Measured{Method: "Pixel-ILT", Report: rep, ILTSec: res.ILTSeconds, Result: res, Mask: res.Mask}, nil
}

// regions builds the option-1 and option-2 regions for a target.
func (c Config) regions(target *grid.Mat) (opt1, opt2 *grid.Mat, err error) {
	m1, m2 := c.RegionMargins()
	opt1, err = mask.Region(target, mask.Option1, m1)
	if err != nil {
		return nil, nil, err
	}
	opt2, err = mask.Region(target, mask.Option2, m2)
	return opt1, opt2, err
}

// m1Case generates one M1 case at this scale.
func (c Config) m1Case(index int) (bench.Case, error) {
	return bench.PaperCase(c.N, c.FieldNM, index)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
