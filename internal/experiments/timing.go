package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/report"
)

// ForwardTiming reproduces the in-text Section III-B experiment: 200
// forward lithography simulations with Eq. (3) (exact), Eq. (7)
// (frequency-truncated) and Eq. (8) (pooled mask), scale factor 4. The
// paper reports 8.173 s / 0.767 s / 0.466 s on an RTX 3090; the shape to
// reproduce is Eq. 8 < Eq. 7 ≪ Eq. 3.
func ForwardTiming(c Config, sims int) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cs, err := c.m1Case(1)
	if err != nil {
		return nil, err
	}
	if sims < 1 {
		sims = 200 / c.IterDiv
		if sims < 10 {
			sims = 10
		}
	}
	const scale = 4
	ks := p.Sim.Model.Nominal
	pooled := poolTarget(cs, scale)

	run := func(name string, f func() error) (float64, error) {
		// One warm-up builds the FFT plans outside the timed region.
		if err := f(); err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		start := time.Now()
		for i := 0; i < sims; i++ {
			if err := f(); err != nil {
				return 0, fmt.Errorf("%s: %w", name, err)
			}
		}
		sec := time.Since(start).Seconds()
		c.logf("timing: %s — %d sims in %.3fs", name, sims, sec)
		return sec, nil
	}

	eq3, err := run("eq3", func() error {
		_, err := p.Sim.Forward(cs.Target, ks, 1, false)
		return err
	})
	if err != nil {
		return nil, err
	}
	eq7, err := run("eq7", func() error {
		_, err := p.Sim.ForwardEq7(cs.Target, scale, ks, 1)
		return err
	})
	if err != nil {
		return nil, err
	}
	eq8, err := run("eq8", func() error {
		_, err := p.Sim.Forward(pooled, ks, 1, false)
		return err
	})
	if err != nil {
		return nil, err
	}

	t := report.NewTable(
		fmt.Sprintf("§III-B — %d forward simulations, s=%d, N=%d", sims, scale, c.N),
		"variant", "measured (s)", "speedup vs Eq.3", "paper (s)", "paper speedup")
	t.Add("Eq. (3) exact", report.F(eq3, 3), "1.00",
		report.F(PaperForwardTiming.Eq3, 3), "1.00")
	t.Add("Eq. (7) truncated", report.F(eq7, 3), report.Ratio(eq3, eq7),
		report.F(PaperForwardTiming.Eq7, 3), report.Ratio(PaperForwardTiming.Eq3, PaperForwardTiming.Eq7))
	t.Add("Eq. (8) pooled mask", report.F(eq8, 3), report.Ratio(eq3, eq8),
		report.F(PaperForwardTiming.Eq8, 3), report.Ratio(PaperForwardTiming.Eq3, PaperForwardTiming.Eq8))
	t.Note("expected shape: Eq.8 ≤ Eq.7 ≪ Eq.3 (absolute values are CPU-vs-GPU)")
	if c.OutDir != "" {
		if err := t.SaveCSV(filepath.Join(c.OutDir, "forward_timing.csv")); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// IterationTime measures the average per-iteration wall time of the
// low-resolution (s = 4), high-resolution (s = 4) and full-resolution ILT
// loops — the basis of the paper's "low-res ILT is about 18× faster" and
// ">2× total iteration-time reduction" claims.
func IterationTime(c Config, iters int) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cs, err := c.m1Case(1)
	if err != nil {
		return nil, err
	}
	if iters < 1 {
		iters = maxInt(2, 20/c.IterDiv)
	}
	type variant struct {
		name  string
		stage core.Stage
	}
	variants := []variant{
		{"low-res (s=4)", core.Stage{Scale: 4, Iters: iters}},
		{"high-res (s=4)", core.Stage{Scale: 4, Iters: iters, HighRes: true}},
		{"full-res (s=1)", core.Stage{Scale: 1, Iters: iters}},
	}
	t := report.NewTable(
		fmt.Sprintf("Per-iteration ILT time (%d iterations each, N=%d)", iters, c.N),
		"variant", "total (s)", "ms/iteration", "vs low-res")
	var per []float64
	for _, v := range variants {
		opts := core.DefaultOptions(p)
		o, err := core.New(opts, cs.Target)
		if err != nil {
			return nil, err
		}
		res, err := o.Run(context.Background(), []core.Stage{v.stage})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		per = append(per, res.ILTSeconds/float64(res.Iterations))
		c.logf("itertime: %s — %.2f ms/iteration", v.name, per[len(per)-1]*1000)
	}
	for i, v := range variants {
		t.Add(v.name, report.F(per[i]*float64(iters), 3),
			report.F(per[i]*1000, 2), report.Ratio(per[i], per[0]))
	}
	t.Note("paper: low-res ≈ 18× faster than high-res at s=4 on GPU; the CPU ratio tracks the same FFT-size asymptotics")
	if c.OutDir != "" {
		if err := t.SaveCSV(filepath.Join(c.OutDir, "iteration_time.csv")); err != nil {
			return nil, err
		}
	}
	return t, nil
}
