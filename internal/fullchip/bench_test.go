package fullchip

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
)

// BenchmarkFullchipWorkers tracks the tile-pool speedup curve: one tiled
// optimization of a 3×3-ish tile grid per iteration, parameterized by the
// worker count. allocs/op includes the per-tile optimizer state by design
// (tiles own their state); the interesting column is ns/op vs workers.
func BenchmarkFullchipWorkers(b *testing.B) {
	p := process(b)
	tgt := grid.NewMat(320, 320)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			geom.FillRect(tgt, geom.Rect{
				X0: 40 + 96*x, Y0: 44 + 96*y, X1: 88 + 96*x, Y1: 64 + 96*y,
			}, 1)
		}
	}
	halo := HaloFor(p, 4)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Optimize(Options{
					Process: p, TileSize: 128, Halo: halo,
					Stages:    []core.Stage{{Scale: 4, Iters: 4}},
					SkipEmpty: true, Workers: w,
				}, tgt)
				if err != nil {
					b.Fatal(err)
				}
				if res.TilesRun == 0 {
					b.Fatal("no tiles ran")
				}
			}
		})
	}
}
