// Package fullchip scales the multi-level ILT flow beyond single clips: a
// layout of arbitrary size is partitioned into power-of-two tiles with halo
// overlap, each tile is optimized independently (the halo absorbs optical
// cross-talk, whose reach is bounded by the kernel interaction radius), and
// the optimized mask cores are stitched back together. This is the standard
// deployment shape of ILT (the paper's DAMO reference [13] targets the same
// full-chip setting); it also demonstrates that the library composes: the
// tile loop is embarrassingly parallel, and Optimize exploits that with a
// bounded worker pool. Tiles write disjoint core regions of the stitched
// mask and each tile's optimization is deterministic, so the result is
// bit-identical for every worker count.
package fullchip

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/telemetry"
)

// TileError identifies which tile of the grid failed. Optimize returns the
// row-major-first failure wrapped in one of these, so callers can recover
// the tile coordinates with errors.As instead of parsing the message.
type TileError struct {
	// TX, TY are the failing tile's grid coordinates (column, row).
	TX, TY int
	// Err is the underlying per-tile failure.
	Err error
}

func (e *TileError) Error() string {
	return fmt.Sprintf("fullchip: tile (%d,%d): %v", e.TX, e.TY, e.Err)
}

func (e *TileError) Unwrap() error { return e.Err }

// Options configures the tiled flow.
//
// Pixel-pitch invariant: a simulation grid of size n over an optics model
// with field F implies a pixel pitch of F/n. The tiled flow therefore
// requires an optics model whose FieldNM equals TileSize × (layout pixel
// pitch) — e.g. 512-px tiles of a 1 nm/px layout need a 512 nm-field model.
type Options struct {
	// Process supplies the forward model (shared across tiles). Its
	// FieldNM must equal TileSize × the layout's pixel pitch.
	Process *litho.Process
	// TileSize is the per-tile simulation grid (power of two).
	TileSize int
	// Halo is the overlap margin in pixels. It must cover the optical
	// interaction radius — roughly the spatial support of the widest
	// kernel — or stitching seams will print. HaloFor picks a safe value.
	Halo int
	// Stages is the per-tile multi-level schedule.
	Stages []core.Stage
	// Configure, when set, can adjust the per-tile optimizer options
	// (penalties, learning rate, ...). The Process field is pre-filled. It
	// is invoked once per Optimize call to build the option template shared
	// by every tile; anything it installs (GradHook, Penalties) must be
	// safe for concurrent use when Workers allows more than one tile in
	// flight.
	Configure func(*core.Options)
	// SkipEmpty skips tiles whose target (including halo) is blank; their
	// mask stays opaque. Defaults to true via New-style helpers; the zero
	// value runs every tile.
	SkipEmpty bool
	// Workers bounds how many tiles are optimized concurrently; ≤ 0 selects
	// runtime.GOMAXPROCS(0). The stitched mask is identical for every value
	// (tiles are independent and write disjoint core regions).
	Workers int
	// Recorder receives one "tile" event per tile (coordinates, seconds,
	// skip state, emitted in row-major order after the pool joins, so the
	// trace is deterministic) plus a "fullchip.end" summary, and is
	// propagated to the shared simulator for phase timers. Nil disables
	// telemetry. Per-tile iteration events stay off unless Configure
	// installs its own core recorder (they would interleave across tiles).
	Recorder *telemetry.Recorder
}

// Result is the stitched outcome.
type Result struct {
	// Mask is the stitched optimized mask, same size as the input target.
	Mask *grid.Mat
	// TilesTotal and TilesRun count the grid and the non-skipped tiles.
	TilesTotal, TilesRun int
	// ILTSeconds is the summed per-tile optimization time (CPU-side cost,
	// independent of how many tiles ran concurrently).
	ILTSeconds float64
	// WallSeconds is the elapsed wall-clock time of the tile loop; with
	// Workers > 1 it drops below ILTSeconds.
	WallSeconds float64
	// TileSeconds records each tile's optimization time in row-major tile
	// order (zero for skipped tiles), preserving per-tile stats regardless
	// of completion order.
	TileSeconds []float64
}

// HaloFor returns a safe halo for a process at the given pixel pitch: the
// optical interaction radius  ≈ 1 / (minimum resolvable pitch) is bounded
// by the kernel support in the frequency domain; its spatial reach is
// P/(2·Δf·n·pixel)… in practice the contest convention of ~0.5·P pixels of
// the native grid works; we take the kernel half-support plus margin.
func HaloFor(p *litho.Process, pixelNM float64) int {
	// The widest kernel's spatial extent is ≈ FieldNM / P (one frequency-
	// grid period over the kernel support); cover it with margin.
	field := p.Sim.Model.Config.FieldNM
	reach := field / float64(p.Sim.Model.Nominal.P) / pixelNM
	h := int(reach*1.5) + 8
	return h
}

// Optimize runs the tiled flow over a target of arbitrary (not necessarily
// square or power-of-two) size.
func Optimize(opt Options, target *grid.Mat) (*Result, error) {
	if opt.Process == nil {
		return nil, fmt.Errorf("fullchip: Options.Process is required")
	}
	t := opt.TileSize
	if t < 8 || t&(t-1) != 0 {
		return nil, fmt.Errorf("fullchip: tile size %d must be a power of two ≥ 8", t)
	}
	if opt.Halo < 0 || 2*opt.Halo >= t {
		return nil, fmt.Errorf("fullchip: halo %d must satisfy 0 ≤ 2·halo < tile %d", opt.Halo, t)
	}
	if len(opt.Stages) == 0 {
		return nil, fmt.Errorf("fullchip: no stages")
	}
	coreStep := t - 2*opt.Halo
	nx := (target.W + coreStep - 1) / coreStep
	ny := (target.H + coreStep - 1) / coreStep

	out := grid.NewMat(target.W, target.H)
	res := &Result{Mask: out, TilesTotal: nx * ny, TileSeconds: make([]float64, nx*ny)}

	// One option template shared by every tile; per-tile optimizers copy it.
	copts := core.DefaultOptions(opt.Process)
	if opt.Configure != nil {
		opt.Configure(&copts)
	}
	copts.Process = opt.Process
	if copts.Workers > 0 {
		// Apply the kernel-loop fan-out once, before the tile pool spins up,
		// so the per-tile core.New calls only read the simulator's knob.
		opt.Process.Sim.Workers = copts.Workers
	}
	if opt.Recorder.Enabled() && opt.Process.Sim.Recorder != opt.Recorder {
		// Phase timers from every tile fold into the shared recorder; apply
		// once before the pool spins up, mirroring the Workers discipline.
		opt.Process.Sim.Recorder = opt.Recorder
	}

	// The tile loop: each worker owns its tile's optimizer state end to end
	// and commits into a disjoint core region of the stitched mask, so no
	// synchronisation is needed beyond the pool join. Outcomes are recorded
	// per tile index and folded in row-major order afterwards, which keeps
	// tile accounting, timing stats and error reporting deterministic.
	type outcome struct {
		run     bool
		seconds float64
		err     error
	}
	outcomes := make([]outcome, nx*ny)
	start := time.Now()
	grid.ParallelFor(opt.Workers, nx*ny, func(idx int) {
		tx, ty := idx%nx, idx/nx
		// Tile origin in target coordinates (may be negative: the halo
		// of border tiles hangs off the layout; those pixels are dark).
		ox := tx*coreStep - opt.Halo
		oy := ty*coreStep - opt.Halo
		tile := extract(target, ox, oy, t)
		if opt.SkipEmpty && tile.Sum() == 0 {
			return
		}
		o, err := core.New(copts, tile)
		if err != nil {
			outcomes[idx].err = &TileError{TX: tx, TY: ty, Err: err}
			return
		}
		r, err := o.Run(context.Background(), opt.Stages)
		if err != nil {
			outcomes[idx].err = &TileError{TX: tx, TY: ty, Err: err}
			return
		}
		// Commit the core region (halo discarded).
		commit(out, r.Mask, ox+opt.Halo, oy+opt.Halo, opt.Halo, coreStep)
		outcomes[idx] = outcome{run: true, seconds: r.ILTSeconds}
	})
	res.WallSeconds = time.Since(start).Seconds()

	// Per-tile latency distribution, fed during the deterministic row-major
	// fold (nil recorder → nil histogram → no-op).
	hTile := opt.Recorder.Histogram("fullchip.tile", telemetry.HistDuration)
	for idx, oc := range outcomes {
		if oc.err != nil {
			return nil, oc.err
		}
		if oc.run {
			res.TilesRun++
			res.ILTSeconds += oc.seconds
			res.TileSeconds[idx] = oc.seconds
			hTile.ObserveDuration(time.Duration(oc.seconds * float64(time.Second)))
		}
		if opt.Recorder.Enabled() {
			opt.Recorder.Emit("tile", telemetry.Fields{
				"tx": idx % nx, "ty": idx / nx, "sec": oc.seconds, "skipped": !oc.run,
			})
		}
	}
	opt.Recorder.Emit("fullchip.end", telemetry.Fields{
		"tiles_total": res.TilesTotal, "tiles_run": res.TilesRun,
		"ilt_sec": res.ILTSeconds, "wall_sec": res.WallSeconds,
	})
	return res, nil
}

// extract copies a t×t window with top-left (ox, oy) out of m, zero-padding
// outside the image.
func extract(m *grid.Mat, ox, oy, t int) *grid.Mat {
	out := grid.NewMat(t, t)
	for y := 0; y < t; y++ {
		sy := oy + y
		if sy < 0 || sy >= m.H {
			continue
		}
		x0 := 0
		if ox < 0 {
			x0 = -ox
		}
		x1 := t
		if ox+t > m.W {
			x1 = m.W - ox
		}
		if x0 >= x1 {
			continue
		}
		copy(out.Data[y*t+x0:y*t+x1], m.Data[sy*m.W+ox+x0:sy*m.W+ox+x1])
	}
	return out
}

// commit writes the core region of a tile mask (starting at halo offset in
// tile coordinates, size step×step) into the output at (cx, cy), clipped to
// the output bounds.
func commit(out, tileMask *grid.Mat, cx, cy, halo, step int) {
	for y := 0; y < step; y++ {
		dy := cy + y
		if dy < 0 || dy >= out.H {
			continue
		}
		for x := 0; x < step; x++ {
			dx := cx + x
			if dx < 0 || dx >= out.W {
				continue
			}
			out.Data[dy*out.W+dx] = tileMask.Data[(halo+y)*tileMask.W+halo+x]
		}
	}
}
