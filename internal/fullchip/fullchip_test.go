package fullchip

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/metrics"
	"repro/internal/optics"
	"repro/internal/telemetry"
)

var (
	procOnce sync.Once
	procVal  *litho.Process
)

func process(t testing.TB) *litho.Process {
	t.Helper()
	procOnce.Do(func() {
		m, err := optics.BuildModel(optics.TestScale())
		if err != nil {
			panic(err)
		}
		procVal = litho.NewProcess(m)
	})
	return procVal
}

func TestExtractZeroPads(t *testing.T) {
	m := grid.NewMat(10, 8)
	m.Fill(1)
	tile := extract(m, -3, -2, 8)
	// Rows 0..1 and columns 0..2 of the tile hang off the layout.
	if tile.At(0, 0) != 0 || tile.At(2, 1) != 0 {
		t.Error("out-of-layout pixels not zero")
	}
	if tile.At(3, 2) != 1 {
		t.Error("in-layout pixel lost")
	}
	// Fully outside window is all zero.
	empty := extract(m, 100, 100, 8)
	if empty.Sum() != 0 {
		t.Error("far-outside window not empty")
	}
}

func TestCommitClipsToOutput(t *testing.T) {
	out := grid.NewMat(10, 10)
	tile := grid.NewMat(8, 8)
	tile.Fill(1)
	commit(out, tile, 7, 7, 2, 4) // core extends past the output edge
	if out.At(9, 9) != 1 {
		t.Error("in-bounds core pixel not committed")
	}
	if out.Sum() != 9 {
		t.Errorf("committed area %v, want 9 (3x3 clipped)", out.Sum())
	}
}

func TestOptimizeValidation(t *testing.T) {
	p := process(t)
	tgt := grid.NewMat(64, 64)
	stages := []core.Stage{{Scale: 2, Iters: 1}}
	cases := []Options{
		{Process: nil, TileSize: 64, Stages: stages},
		{Process: p, TileSize: 48, Stages: stages},
		{Process: p, TileSize: 64, Halo: 32, Stages: stages},
		{Process: p, TileSize: 64, Halo: -1, Stages: stages},
		{Process: p, TileSize: 64},
	}
	for i, opt := range cases {
		if _, err := Optimize(opt, tgt); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

// TestTiledMatchesMonolithicQuality: a non-power-of-two layout is tiled,
// optimized, stitched, and must print essentially as well as a monolithic
// run over the enclosing power-of-two grid.
func TestTiledMatchesMonolithicQuality(t *testing.T) {
	p := process(t)
	// 192×160 layout (not square, not a power of two).
	tgt := grid.NewMat(192, 160)
	geom.FillRect(tgt, geom.Rect{X0: 30, Y0: 40, X1: 90, Y1: 60}, 1)
	geom.FillRect(tgt, geom.Rect{X0: 110, Y0: 90, X1: 170, Y1: 110}, 1)
	geom.FillRect(tgt, geom.Rect{X0: 30, Y0: 100, X1: 80, Y1: 120}, 1)

	stages := []core.Stage{{Scale: 4, Iters: 20}}
	halo := HaloFor(p, 4) // TestScale at 128-px tiles → 4 nm/px
	if 2*halo >= 128 {
		t.Fatalf("halo %d too large for the test tile", halo)
	}
	res, err := Optimize(Options{
		Process: p, TileSize: 128, Halo: halo, Stages: stages, SkipEmpty: true,
	}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mask.W != 192 || res.Mask.H != 160 {
		t.Fatalf("stitched mask size %dx%d", res.Mask.W, res.Mask.H)
	}
	if res.TilesRun == 0 || res.TilesRun > res.TilesTotal {
		t.Fatalf("tile accounting: ran %d of %d", res.TilesRun, res.TilesTotal)
	}

	// Evaluate by embedding into a 256² frame at the SAME 4 nm pixel pitch,
	// which requires an optics model with a 1024 nm field (the pitch
	// invariant documented on Options).
	evalCfg := optics.TestScale()
	evalCfg.FieldNM = 1024
	evalModel, err := optics.BuildModel(evalCfg)
	if err != nil {
		t.Fatal(err)
	}
	evalProc := litho.NewProcess(evalModel)
	embed := func(m *grid.Mat) *grid.Mat {
		out := grid.NewMat(256, 256)
		out.PasteRect(m, 32, 48)
		return out
	}
	embTarget := embed(tgt)
	embTiled := embed(res.Mask)

	mono, err := core.New(core.DefaultOptions(evalProc), embTarget)
	if err != nil {
		t.Fatal(err)
	}
	monoRes, err := mono.Run(context.Background(), stages)
	if err != nil {
		t.Fatal(err)
	}

	tiledRep, err := metrics.Evaluate(evalProc, embTiled, embTarget, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	monoRep, err := metrics.Evaluate(evalProc, monoRes.Mask, embTarget, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	rawRep, err := metrics.Evaluate(evalProc, embTarget, embTarget, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tiledRep.L2 >= rawRep.L2 {
		t.Errorf("tiled flow did not improve over raw mask: %v vs %v", tiledRep.L2, rawRep.L2)
	}
	if tiledRep.L2 > 1.5*monoRep.L2+50 {
		t.Errorf("tiled L2 %v far above monolithic %v — stitching seams?", tiledRep.L2, monoRep.L2)
	}
}

func TestSkipEmptyTiles(t *testing.T) {
	p := process(t)
	// One feature in the corner of a large sparse layout.
	tgt := grid.NewMat(256, 256)
	geom.FillRect(tgt, geom.Rect{X0: 10, Y0: 10, X1: 50, Y1: 30}, 1)
	res, err := Optimize(Options{
		Process: p, TileSize: 64, Halo: 12,
		Stages: []core.Stage{{Scale: 2, Iters: 2}}, SkipEmpty: true,
	}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if res.TilesRun >= res.TilesTotal {
		t.Errorf("no tiles skipped on a sparse layout: %d of %d", res.TilesRun, res.TilesTotal)
	}
	// Mask stays dark away from the feature.
	if res.Mask.At(200, 200) != 0 {
		t.Error("mask opened in an empty region")
	}
}

// TestParallelTilesMatchSerial: the stitched mask, tile accounting and
// per-tile stats layout must be identical whether tiles run one at a time
// or through the worker pool — tile order must not leak into the result.
func TestParallelTilesMatchSerial(t *testing.T) {
	p := process(t)
	tgt := grid.NewMat(192, 160)
	geom.FillRect(tgt, geom.Rect{X0: 30, Y0: 40, X1: 90, Y1: 60}, 1)
	geom.FillRect(tgt, geom.Rect{X0: 110, Y0: 90, X1: 170, Y1: 110}, 1)
	geom.FillRect(tgt, geom.Rect{X0: 20, Y0: 120, X1: 70, Y1: 140}, 1)

	base := Options{
		Process: p, TileSize: 128, Halo: HaloFor(p, 4),
		Stages: []core.Stage{{Scale: 4, Iters: 6}}, SkipEmpty: true,
	}
	serialOpt := base
	serialOpt.Workers = 1
	serial, err := Optimize(serialOpt, tgt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 0} { // 0 = GOMAXPROCS
		parOpt := base
		parOpt.Workers = workers
		par, err := Optimize(parOpt, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if !par.Mask.Equal(serial.Mask, 0) {
			t.Errorf("workers=%d: stitched mask differs from serial run", workers)
		}
		if par.TilesRun != serial.TilesRun || par.TilesTotal != serial.TilesTotal {
			t.Errorf("workers=%d: tile accounting %d/%d vs serial %d/%d",
				workers, par.TilesRun, par.TilesTotal, serial.TilesRun, serial.TilesTotal)
		}
		if len(par.TileSeconds) != par.TilesTotal {
			t.Errorf("workers=%d: %d tile timings for %d tiles", workers, len(par.TileSeconds), par.TilesTotal)
		}
		for idx := range par.TileSeconds {
			if (par.TileSeconds[idx] > 0) != (serial.TileSeconds[idx] > 0) {
				t.Errorf("workers=%d: tile %d run/skip state differs from serial", workers, idx)
			}
		}
	}
}

// TestPerTileStatsConsistent: ILTSeconds must equal the sum of TileSeconds
// and only non-skipped tiles may report time.
func TestPerTileStatsConsistent(t *testing.T) {
	p := process(t)
	tgt := grid.NewMat(256, 256)
	geom.FillRect(tgt, geom.Rect{X0: 10, Y0: 10, X1: 50, Y1: 30}, 1)
	res, err := Optimize(Options{
		Process: p, TileSize: 64, Halo: 12,
		Stages: []core.Stage{{Scale: 2, Iters: 2}}, SkipEmpty: true, Workers: 2,
	}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	ran := 0
	for _, s := range res.TileSeconds {
		if s > 0 {
			ran++
		}
		sum += s
	}
	if ran != res.TilesRun {
		t.Errorf("%d tiles with recorded time, %d reported run", ran, res.TilesRun)
	}
	if diff := sum - res.ILTSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum of TileSeconds %g != ILTSeconds %g", sum, res.ILTSeconds)
	}
	if res.WallSeconds <= 0 {
		t.Error("WallSeconds not recorded")
	}
}

func TestConfigureHookApplies(t *testing.T) {
	p := process(t)
	tgt := grid.NewMat(64, 64)
	geom.FillRect(tgt, geom.Rect{X0: 20, Y0: 20, X1: 44, Y1: 44}, 1)
	called := false
	_, err := Optimize(Options{
		Process: p, TileSize: 64, Halo: 8,
		Stages: []core.Stage{{Scale: 2, Iters: 1}},
		Configure: func(o *core.Options) {
			called = true
			o.SmoothWindow = 0
		},
	}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("Configure hook never invoked")
	}
}

func TestTileErrorCarriesCoordinates(t *testing.T) {
	p := process(t)
	tgt := grid.NewMat(96, 96)
	geom.FillRect(tgt, geom.Rect{X0: 8, Y0: 8, X1: 88, Y1: 88}, 1)
	// A Configure hook that poisons the option template makes every tile's
	// core.New fail; the reported error must be the row-major-first tile.
	_, err := Optimize(Options{
		Process: p, TileSize: 64, Halo: 8,
		Stages:    []core.Stage{{Scale: 4, Iters: 1}},
		Configure: func(o *core.Options) { o.LearningRate = -1 },
	}, tgt)
	if err == nil {
		t.Fatal("poisoned options accepted")
	}
	var te *TileError
	if !errors.As(err, &te) {
		t.Fatalf("error %T does not unwrap to *TileError: %v", err, err)
	}
	if te.TX != 0 || te.TY != 0 {
		t.Errorf("failing tile (%d,%d), want row-major first (0,0)", te.TX, te.TY)
	}
	if !strings.Contains(err.Error(), "tile (0,0)") {
		t.Errorf("error message %q missing tile coordinates", err.Error())
	}
	if te.Unwrap() == nil || !strings.Contains(te.Unwrap().Error(), "learning rate") {
		t.Errorf("unwrapped cause %v, want the core validation error", te.Unwrap())
	}
}

// eventSink retains events for assertions (fullchip emits tile events in
// row-major order after the pool joins, so the trace is deterministic).
type eventSink struct{ events []telemetry.Event }

func (s *eventSink) Emit(e telemetry.Event) { s.events = append(s.events, e) }
func (s *eventSink) Flush() error           { return nil }

func TestRecorderTileEventsRowMajor(t *testing.T) {
	p := process(t)
	// 2×2 tile grid with content only in the top-left tile; SkipEmpty marks
	// the other three as skipped but they still get a tile event.
	tgt := grid.NewMat(96, 96)
	geom.FillRect(tgt, geom.Rect{X0: 4, Y0: 4, X1: 30, Y1: 30}, 1)
	sink := &eventSink{}
	rec := telemetry.New(telemetry.WithSink(sink))
	res, err := Optimize(Options{
		Process: p, TileSize: 64, Halo: 8, SkipEmpty: true, Workers: 4,
		Stages:   []core.Stage{{Scale: 4, Iters: 1}},
		Recorder: rec,
	}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	var tiles []telemetry.Event
	ends := 0
	for _, e := range sink.events {
		switch e.Name {
		case "tile":
			tiles = append(tiles, e)
		case "fullchip.end":
			ends++
		}
	}
	if len(tiles) != res.TilesTotal || ends != 1 {
		t.Fatalf("%d tile events (want %d) and %d fullchip.end (want 1)", len(tiles), res.TilesTotal, ends)
	}
	skipped := 0
	for i, e := range tiles {
		tx, _ := e.Fields["tx"].(int)
		ty, _ := e.Fields["ty"].(int)
		if tx != i%2 || ty != i/2 {
			t.Errorf("tile event %d at (%d,%d), want row-major (%d,%d)", i, tx, ty, i%2, i/2)
		}
		if b, _ := e.Fields["skipped"].(bool); b {
			skipped++
		}
	}
	if run := res.TilesTotal - skipped; run != res.TilesRun {
		t.Errorf("events report %d run tiles, result says %d", run, res.TilesRun)
	}
}

// TestBandEngineFlowsThroughTiles: the tile pool shares one Process, so the
// Sim's FFT engine selection must reach every tile — and the pruning-only
// engine must stitch a mask bit-identical to the dense reference engine.
func TestBandEngineFlowsThroughTiles(t *testing.T) {
	tgt := grid.NewMat(192, 160)
	geom.FillRect(tgt, geom.Rect{X0: 30, Y0: 40, X1: 90, Y1: 60}, 1)
	geom.FillRect(tgt, geom.Rect{X0: 110, Y0: 90, X1: 170, Y1: 110}, 1)

	run := func(e litho.FFTEngine) *Result {
		proc := litho.NewProcess(process(t).Sim.Model)
		proc.Sim.Engine = e
		res, err := Optimize(Options{
			Process: proc, TileSize: 128, Halo: HaloFor(proc, 4),
			Stages: []core.Stage{{Scale: 4, Iters: 6}}, SkipEmpty: true, Workers: 2,
		}, tgt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(litho.EngineReference)
	band := run(litho.EngineBandInverse)
	if !band.Mask.Equal(ref.Mask, 0) {
		t.Error("pruned-inverse engine stitched a different mask than the reference engine")
	}
	if band.TilesRun != ref.TilesRun {
		t.Errorf("tile accounting differs: %d vs %d", band.TilesRun, ref.TilesRun)
	}
}
