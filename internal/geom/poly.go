package geom

import (
	"fmt"

	"repro/internal/grid"
)

// Point is an integer pixel coordinate.
type Point struct {
	X, Y int
}

// Polygon is a rectilinear (Manhattan) polygon given by its vertices in
// order; consecutive vertices must share either X or Y. The boundary closes
// from the last vertex back to the first. Coordinates follow the half-open
// pixel convention: a unit square covering pixel (0,0) is
// (0,0)(1,0)(1,1)(0,1).
type Polygon []Point

// Validate reports the first geometric problem: fewer than 4 vertices, a
// non-Manhattan segment, or a zero-length edge.
func (p Polygon) Validate() error {
	if len(p) < 4 {
		return fmt.Errorf("geom: polygon needs ≥ 4 vertices, got %d", len(p))
	}
	for i := range p {
		a, b := p[i], p[(i+1)%len(p)]
		if a.X != b.X && a.Y != b.Y {
			return fmt.Errorf("geom: segment %d (%v→%v) is not axis-aligned", i, a, b)
		}
		if a == b {
			return fmt.Errorf("geom: zero-length segment at vertex %d", i)
		}
	}
	return nil
}

// BBox returns the polygon bounding box.
func (p Polygon) BBox() Rect {
	r := Rect{X0: p[0].X, Y0: p[0].Y, X1: p[0].X, Y1: p[0].Y}
	for _, v := range p[1:] {
		if v.X < r.X0 {
			r.X0 = v.X
		}
		if v.Y < r.Y0 {
			r.Y0 = v.Y
		}
		if v.X > r.X1 {
			r.X1 = v.X
		}
		if v.Y > r.Y1 {
			r.Y1 = v.Y
		}
	}
	return r
}

// Area returns the enclosed area via the shoelace formula (always ≥ 0).
func (p Polygon) Area() int {
	var a int
	for i := range p {
		j := (i + 1) % len(p)
		a += p[i].X*p[j].Y - p[j].X*p[i].Y
	}
	if a < 0 {
		a = -a
	}
	return a / 2
}

// Rasterize fills the polygon interior into m (setting pixels to 1) using
// even-odd scanline filling on pixel centers. Pixels outside m are clipped.
func (p Polygon) Rasterize(m *grid.Mat) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bb := p.BBox().Intersect(Rect{0, 0, m.W, m.H})
	if bb.Empty() {
		return nil
	}
	for y := bb.Y0; y < bb.Y1; y++ {
		cy := float64(y) + 0.5
		// Collect crossings of vertical edges with the scanline.
		var xs []int
		for i := range p {
			a, b := p[i], p[(i+1)%len(p)]
			if a.X != b.X {
				continue // horizontal edge: no crossing with a center line
			}
			y0, y1 := a.Y, b.Y
			if y0 > y1 {
				y0, y1 = y1, y0
			}
			if cy > float64(y0) && cy < float64(y1) {
				xs = append(xs, a.X)
			}
		}
		if len(xs)%2 != 0 {
			return fmt.Errorf("geom: odd crossing count at scanline %d (self-intersecting polygon?)", y)
		}
		sortInts(xs)
		for k := 0; k+1 < len(xs); k += 2 {
			x0, x1 := xs[k], xs[k+1]
			if x0 < 0 {
				x0 = 0
			}
			if x1 > m.W {
				x1 = m.W
			}
			row := m.Data[y*m.W : (y+1)*m.W]
			for x := x0; x < x1; x++ {
				row[x] = 1
			}
		}
	}
	return nil
}

// RectPolygon returns the 4-vertex polygon of a rectangle.
func RectPolygon(r Rect) Polygon {
	return Polygon{{r.X0, r.Y0}, {r.X1, r.Y0}, {r.X1, r.Y1}, {r.X0, r.Y1}}
}

func sortInts(a []int) {
	// Insertion sort: crossing lists are tiny (almost always 2–6 entries).
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
