package geom

import "repro/internal/grid"

// Contour extraction: trace the boundary of every connected component as a
// closed rectilinear polygon on the pixel-corner lattice. The polygons
// reproduce the mask exactly under Rasterize (outer boundaries only — holes
// are traced as separate clockwise polygons by TraceContours).

// TraceContours returns the boundary polygons of the binary image: one
// counter-clockwise polygon per outer boundary and one clockwise polygon
// per hole boundary. Rasterizing the outer polygons and XOR-ing the holes
// reproduces the image; for hole-free masks, Rasterize over all returned
// polygons is exact.
func TraceContours(m *grid.Mat) []Polygon {
	// Walk the boundary graph on pixel corners. A directed boundary edge
	// exists wherever a set pixel borders an unset one; following edges
	// with the "inside on the left" rule yields closed loops.
	//
	// Edge encoding: for the corner lattice (W+1)×(H+1), each boundary
	// edge is stored by its start corner and direction (0=+x, 1=+y, 2=−x,
	// 3=−y).
	w, h := m.W, m.H
	at := func(x, y int) bool {
		if x < 0 || x >= w || y < 0 || y >= h {
			return false
		}
		return m.Data[y*w+x] >= 0.5
	}
	type edgeKey struct {
		x, y, dir int
	}
	edges := make(map[edgeKey]bool)
	// Horizontal boundaries: between pixel rows y−1 and y at corner row y.
	for y := 0; y <= h; y++ {
		for x := 0; x < w; x++ {
			below, above := at(x, y), at(x, y-1)
			if below == above {
				continue
			}
			if below {
				// Feature below: walking +x keeps the inside on the left?
				// Inside is below (greater y in image coordinates). With
				// image y growing downward, "inside on the left" when
				// walking −x; we adopt the convention inside-on-left with
				// screen coordinates: feature below → edge direction −x.
				edges[edgeKey{x + 1, y, 2}] = true
			} else {
				edges[edgeKey{x, y, 0}] = true
			}
		}
	}
	// Vertical boundaries: between pixel columns x−1 and x at corner col x.
	for x := 0; x <= w; x++ {
		for y := 0; y < h; y++ {
			right, left := at(x, y), at(x-1, y)
			if right == left {
				continue
			}
			if right {
				edges[edgeKey{x, y, 1}] = true
			} else {
				edges[edgeKey{x, y + 1, 3}] = true
			}
		}
	}

	var deltas = [4][2]int{{1, 0}, {0, 1}, {-1, 0}, {0, -1}}
	var polys []Polygon
	for len(edges) > 0 {
		// Pick any remaining edge deterministically enough: take the
		// lexicographically smallest key to make output reproducible.
		var start edgeKey
		first := true
		for k := range edges {
			if first || k.y < start.y || (k.y == start.y && (k.x < start.x || (k.x == start.x && k.dir < start.dir))) {
				start, first = k, false
			}
		}
		var poly Polygon
		cur := start
		for {
			delete(edges, cur)
			next := edgeKey{cur.x + deltas[cur.dir][0], cur.y + deltas[cur.dir][1], cur.dir}
			// At the next corner, prefer turning left, then straight, then
			// right (keeps the trace on the same boundary at crossings).
			chosen := false
			for _, turn := range []int{3, 0, 1} { // left, straight, right
				d := (next.dir + turn) % 4
				cand := edgeKey{next.x, next.y, d}
				if edges[cand] {
					if d != cur.dir {
						poly = append(poly, Point{X: next.x, Y: next.y})
					}
					cur = cand
					chosen = true
					break
				}
			}
			if !chosen {
				// Loop closed: add the final corner if it bends.
				if next.x == start.x && next.y == start.y {
					if start.dir != cur.dir {
						poly = append(poly, Point{X: next.x, Y: next.y})
					}
					break
				}
				// Dead end should be impossible on a well-formed boundary.
				poly = append(poly, Point{X: next.x, Y: next.y})
				break
			}
		}
		if len(poly) >= 4 {
			polys = append(polys, poly)
		}
	}
	return polys
}

// ContourPerimeter returns the total boundary length of the binary image in
// pixel units (the sum of all contour lengths).
func ContourPerimeter(m *grid.Mat) int {
	total := 0
	for _, s := range EdgeSegments(m) {
		total += s.Len()
	}
	return total
}
