package geom

import "repro/internal/grid"

// Box morphology with a square (2h+1)×(2h+1) structuring element, i.e.
// Chebyshev-ball dilation/erosion. Both are separable into a horizontal and
// a vertical running max/min pass, so the cost is O(pixels · h) worst case
// and independent of the set-pixel count.

// DilateBox returns the binary dilation of m by a square of half-width h.
func DilateBox(m *grid.Mat, h int) *grid.Mat {
	if h <= 0 {
		return m.Clone()
	}
	return boxExtreme(m, h, true)
}

// ErodeBox returns the binary erosion of m by a square of half-width h.
// Pixels within h of the image border erode away (the outside counts as 0).
func ErodeBox(m *grid.Mat, h int) *grid.Mat {
	if h <= 0 {
		return m.Clone()
	}
	return boxExtreme(m, h, false)
}

// OpenBox is erosion followed by dilation: removes features thinner than
// the structuring element (the paper's "eliminate too small shapes").
func OpenBox(m *grid.Mat, h int) *grid.Mat {
	return DilateBox(ErodeBox(m, h), h)
}

// CloseBox is dilation followed by erosion: fills gaps and holes thinner
// than the structuring element.
func CloseBox(m *grid.Mat, h int) *grid.Mat {
	return ErodeBox(DilateBox(m, h), h)
}

func boxExtreme(m *grid.Mat, h int, dilate bool) *grid.Mat {
	w, ht := m.W, m.H
	tmp := grid.NewMat(w, ht)
	out := grid.NewMat(w, ht)
	// Horizontal pass.
	for y := 0; y < ht; y++ {
		row := m.Data[y*w : (y+1)*w]
		trow := tmp.Data[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			x0, x1 := x-h, x+h
			if x0 < 0 {
				x0 = 0
			}
			if x1 > w-1 {
				x1 = w - 1
			}
			v := pick(row[x0:x1+1], dilate)
			if !dilate && (x-h < 0 || x+h > w-1) {
				v = 0 // border counts as background for erosion
			}
			trow[x] = v
		}
	}
	// Vertical pass.
	for x := 0; x < w; x++ {
		for y := 0; y < ht; y++ {
			y0, y1 := y-h, y+h
			if y0 < 0 {
				y0 = 0
			}
			if y1 > ht-1 {
				y1 = ht - 1
			}
			var v float64
			if dilate {
				for yy := y0; yy <= y1; yy++ {
					if tmp.Data[yy*w+x] >= 0.5 {
						v = 1
						break
					}
				}
			} else {
				v = 1
				if y-h < 0 || y+h > ht-1 {
					v = 0
				} else {
					for yy := y0; yy <= y1; yy++ {
						if tmp.Data[yy*w+x] < 0.5 {
							v = 0
							break
						}
					}
				}
			}
			out.Data[y*w+x] = v
		}
	}
	return out
}

func pick(vals []float64, dilate bool) float64 {
	if dilate {
		for _, v := range vals {
			if v >= 0.5 {
				return 1
			}
		}
		return 0
	}
	for _, v := range vals {
		if v < 0.5 {
			return 0
		}
	}
	return 1
}
