package geom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func bitmapFromStrings(rows ...string) *grid.Mat {
	h := len(rows)
	w := len(rows[0])
	m := grid.NewMat(w, h)
	for y, r := range rows {
		for x, c := range r {
			if c == '#' {
				m.Set(x, y, 1)
			}
		}
	}
	return m
}

func TestRectBasics(t *testing.T) {
	r := Rect{1, 2, 4, 6}
	if r.W() != 3 || r.H() != 4 || r.Area() != 12 || r.Empty() {
		t.Fatalf("Rect basics broken: %+v", r)
	}
	u := r.Union(Rect{0, 0, 2, 3})
	if u != (Rect{0, 0, 4, 6}) {
		t.Errorf("Union = %+v", u)
	}
	i := r.Intersect(Rect{2, 3, 10, 4})
	if i != (Rect{2, 3, 4, 4}) {
		t.Errorf("Intersect = %+v", i)
	}
	if !r.Intersect(Rect{5, 5, 6, 6}).Empty() {
		t.Error("disjoint Intersect not empty")
	}
}

func TestComponentsTwoRegions(t *testing.T) {
	m := bitmapFromStrings(
		"##..#",
		"##..#",
		".....",
	)
	comps := Components(m)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if comps[0].Area != 4 || comps[0].BBox != (Rect{0, 0, 2, 2}) {
		t.Errorf("component 0: %+v", comps[0])
	}
	if comps[1].Area != 2 || comps[1].BBox != (Rect{4, 0, 5, 2}) {
		t.Errorf("component 1: %+v", comps[1])
	}
}

func TestComponentsDiagonalNotConnected(t *testing.T) {
	m := bitmapFromStrings(
		"#.",
		".#",
	)
	if got := len(Components(m)); got != 2 {
		t.Fatalf("diagonal pixels merged: %d components, want 2 (4-connectivity)", got)
	}
}

func TestComponentsEmpty(t *testing.T) {
	if got := len(Components(grid.NewMat(5, 5))); got != 0 {
		t.Fatalf("empty image has %d components", got)
	}
}

func TestRemoveComponent(t *testing.T) {
	m := bitmapFromStrings(
		"##..#",
		"##..#",
	)
	labels, comps := Label(m)
	RemoveComponent(m, labels, comps[1].Label)
	if m.At(4, 0) != 0 || m.At(0, 0) != 1 {
		t.Error("RemoveComponent removed the wrong region")
	}
}

func TestDilateErodeBox(t *testing.T) {
	m := grid.NewMat(9, 9)
	m.Set(4, 4, 1)
	d := DilateBox(m, 1)
	if d.Sum() != 9 {
		t.Errorf("dilated area %v, want 9", d.Sum())
	}
	e := ErodeBox(d, 1)
	if e.Sum() != 1 || e.At(4, 4) != 1 {
		t.Errorf("erode(dilate(point)) area %v", e.Sum())
	}
}

func TestErodeBorderIsBackground(t *testing.T) {
	m := grid.NewMat(5, 5)
	m.Fill(1)
	e := ErodeBox(m, 1)
	// Only the 3x3 interior survives.
	if e.Sum() != 9 {
		t.Errorf("eroded full-frame area %v, want 9", e.Sum())
	}
	if e.At(0, 0) != 0 || e.At(2, 2) != 1 {
		t.Error("erosion border handling wrong")
	}
}

func TestOpenRemovesThinFeature(t *testing.T) {
	m := bitmapFromStrings(
		"........",
		".######.",
		"........",
		".###....",
		".###....",
		".###....",
		"........",
		"........",
	)
	o := OpenBox(m, 1)
	// The 1-px-tall bar disappears; the 3x3 block survives.
	if o.At(3, 1) != 0 {
		t.Error("opening kept the thin bar")
	}
	if o.At(2, 4) != 1 {
		t.Error("opening destroyed the 3x3 block")
	}
}

func TestCloseFillsGap(t *testing.T) {
	m := bitmapFromStrings(
		"........",
		".##.##..",
		".##.##..",
		"........",
	)
	c := CloseBox(m, 1)
	if c.At(3, 1) != 1 || c.At(3, 2) != 1 {
		t.Error("closing did not fill the 1-px gap")
	}
}

func TestDilateZeroIsClone(t *testing.T) {
	m := bitmapFromStrings("#.")
	d := DilateBox(m, 0)
	if !d.Equal(m, 0) {
		t.Error("h=0 dilation not identity")
	}
	d.Set(1, 0, 1)
	if m.At(1, 0) != 0 {
		t.Error("h=0 dilation aliases input")
	}
}

func checkFracture(t *testing.T, m *grid.Mat, rects []Rect) {
	t.Helper()
	cover := grid.NewMat(m.W, m.H)
	for _, r := range rects {
		if r.Empty() || r.X0 < 0 || r.Y0 < 0 || r.X1 > m.W || r.Y1 > m.H {
			t.Fatalf("invalid rect %+v", r)
		}
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				if cover.At(x, y) != 0 {
					t.Fatalf("rectangles overlap at (%d,%d)", x, y)
				}
				cover.Set(x, y, 1)
			}
		}
	}
	for i := range m.Data {
		set := m.Data[i] >= 0.5
		if set != (cover.Data[i] == 1) {
			t.Fatalf("coverage mismatch at index %d: mask %v cover %v", i, m.Data[i], cover.Data[i])
		}
	}
}

func TestFractureRunMergeSimpleShapes(t *testing.T) {
	cases := []struct {
		rows []string
		want int
	}{
		{[]string{"####", "####"}, 1},
		{[]string{"##..", "##..", "..##", "..##"}, 2},
		{[]string{"###.", "###.", "##..", "##.."}, 2}, // L-shape: 2 maximal stacks
		{[]string{"....", "....", "...."}, 0},
	}
	for i, c := range cases {
		m := bitmapFromStrings(c.rows...)
		rects := FractureRunMerge(m)
		checkFracture(t, m, rects)
		if len(rects) != c.want {
			t.Errorf("case %d: %d rects, want %d", i, len(rects), c.want)
		}
	}
}

func TestFracturePropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := grid.NewMat(24, 18)
		for i := range m.Data {
			if rng.Float64() < 0.4 {
				m.Data[i] = 1
			}
		}
		rects := FractureRunMerge(m)
		// Exact disjoint cover: total rect area equals set-pixel count, and
		// re-rasterising the rects reproduces the mask.
		area := 0
		cover := grid.NewMat(m.W, m.H)
		for _, r := range rects {
			area += r.Area()
			for y := r.Y0; y < r.Y1; y++ {
				for x := r.X0; x < r.X1; x++ {
					if cover.At(x, y) != 0 {
						return false
					}
					cover.Set(x, y, 1)
				}
			}
		}
		if float64(area) != m.Sum() {
			return false
		}
		return cover.Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFractureGreedyCoversAndBeatsOrMatchesRunMerge(t *testing.T) {
	m := bitmapFromStrings(
		"#####...",
		"#####...",
		"#####...",
		"###.....",
		"###..###",
		"###..###",
	)
	greedy := FractureGreedy(m)
	checkFracture(t, m, greedy)
	runMerge := FractureRunMerge(m)
	checkFracture(t, m, runMerge)
	if len(greedy) > len(runMerge) {
		t.Errorf("greedy %d shots > run-merge %d", len(greedy), len(runMerge))
	}
}

func TestShotCountRegularVsRagged(t *testing.T) {
	// A clean rectangle fractures into 1 shot; a ragged staircase of equal
	// area needs many — the property Table I's #shots column relies on.
	clean := grid.NewMat(16, 16)
	FillRect(clean, Rect{4, 4, 12, 12}, 1)
	ragged := grid.NewMat(16, 16)
	for y := 4; y < 12; y++ {
		FillRect(ragged, Rect{4 + (y % 3), y, 12 + (y % 3) - 3, y + 1}, 1)
	}
	if ShotCount(clean) != 1 {
		t.Errorf("clean rectangle shots = %d, want 1", ShotCount(clean))
	}
	if ShotCount(ragged) <= ShotCount(clean) {
		t.Error("ragged mask does not cost more shots than clean mask")
	}
}

func TestPolygonValidate(t *testing.T) {
	good := Polygon{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid polygon rejected: %v", err)
	}
	bad := Polygon{{0, 0}, {4, 3}, {4, 4}, {0, 4}}
	if err := bad.Validate(); err == nil {
		t.Error("diagonal segment accepted")
	}
	short := Polygon{{0, 0}, {4, 0}, {4, 4}}
	if err := short.Validate(); err == nil {
		t.Error("3-vertex polygon accepted")
	}
	dup := Polygon{{0, 0}, {0, 0}, {4, 0}, {4, 4}}
	if err := dup.Validate(); err == nil {
		t.Error("zero-length segment accepted")
	}
}

func TestPolygonAreaAndBBox(t *testing.T) {
	p := RectPolygon(Rect{1, 2, 5, 7})
	if p.Area() != 20 {
		t.Errorf("area = %d, want 20", p.Area())
	}
	if p.BBox() != (Rect{1, 2, 5, 7}) {
		t.Errorf("bbox = %+v", p.BBox())
	}
}

func TestRasterizeRectangle(t *testing.T) {
	m := grid.NewMat(8, 8)
	if err := RectPolygon(Rect{2, 1, 6, 5}).Rasterize(m); err != nil {
		t.Fatal(err)
	}
	if m.Sum() != 16 {
		t.Errorf("rasterized area %v, want 16", m.Sum())
	}
	if m.At(2, 1) != 1 || m.At(5, 4) != 1 || m.At(6, 5) != 0 || m.At(1, 1) != 0 {
		t.Error("rectangle rasterization bounds wrong (half-open convention)")
	}
}

func TestRasterizeLShape(t *testing.T) {
	// L-shape: 4x4 square plus a 2x4 extension.
	p := Polygon{{0, 0}, {4, 0}, {4, 2}, {6, 2}, {6, 6}, {0, 6}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := grid.NewMat(8, 8)
	if err := p.Rasterize(m); err != nil {
		t.Fatal(err)
	}
	wantArea := p.Area()
	if int(m.Sum()) != wantArea {
		t.Errorf("rasterized area %v, want %d (shoelace)", m.Sum(), wantArea)
	}
	if m.At(5, 1) != 0 || m.At(5, 3) != 1 || m.At(1, 1) != 1 {
		t.Error("L-shape rasterization content wrong")
	}
}

func TestRasterizeClipsToImage(t *testing.T) {
	m := grid.NewMat(4, 4)
	if err := RectPolygon(Rect{-2, -2, 2, 2}).Rasterize(m); err != nil {
		t.Fatal(err)
	}
	if m.Sum() != 4 {
		t.Errorf("clipped area %v, want 4", m.Sum())
	}
}

// Property: rasterize(fracture(m)) == m for random masks — the two
// representations round-trip.
func TestFractureRasterizeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := grid.NewMat(20, 20)
		for k := 0; k < 6; k++ {
			x0, y0 := rng.Intn(16), rng.Intn(16)
			FillRect(m, Rect{x0, y0, x0 + 1 + rng.Intn(4), y0 + 1 + rng.Intn(4)}, 1)
		}
		back := grid.NewMat(20, 20)
		for _, r := range FractureRunMerge(m) {
			if err := RectPolygon(r).Rasterize(back); err != nil {
				return false
			}
		}
		return back.Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEdgeSegmentsSquare(t *testing.T) {
	m := grid.NewMat(8, 8)
	FillRect(m, Rect{2, 3, 6, 6}, 1)
	segs := EdgeSegments(m)
	if len(segs) != 4 {
		t.Fatalf("square has %d segments, want 4", len(segs))
	}
	var totalLen int
	for _, s := range segs {
		totalLen += s.Len()
	}
	if totalLen != 2*(4+3) {
		t.Errorf("perimeter %d, want 14", totalLen)
	}
	// Check one specific segment: the top edge at y=3 spans x∈[2,6), inward +1.
	found := false
	for _, s := range segs {
		if s.Orient == Horizontal && s.Pos == 3 && s.Lo == 2 && s.Hi == 6 && s.Inward == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("top edge segment missing: %+v", segs)
	}
}

func TestEdgeSegmentsBorderTouching(t *testing.T) {
	m := grid.NewMat(4, 4)
	m.Fill(1)
	segs := EdgeSegments(m)
	var total int
	for _, s := range segs {
		total += s.Len()
	}
	if total != 16 {
		t.Errorf("full-frame perimeter %d, want 16", total)
	}
}

func TestSampleEdgesSpacing(t *testing.T) {
	segs := []Segment{{Orient: Horizontal, Pos: 5, Lo: 0, Hi: 40, Inward: 1}}
	pts := SampleEdges(segs, 10)
	if len(pts) != 4 {
		t.Fatalf("got %d sample points, want 4", len(pts))
	}
	for _, p := range pts {
		if p.Y != 5 || p.NY != 1 || p.NX != 0 {
			t.Errorf("bad sample point %+v", p)
		}
	}
	// A short segment still gets one point.
	short := []Segment{{Orient: Vertical, Pos: 3, Lo: 0, Hi: 6, Inward: -1}}
	pv := SampleEdges(short, 10)
	if len(pv) != 1 {
		t.Fatalf("short segment got %d points, want 1", len(pv))
	}
	if pv[0].X != 2 || pv[0].NX != -1 {
		t.Errorf("inward -1 vertical sample wrong: %+v", pv[0])
	}
}

func TestFillRectClips(t *testing.T) {
	m := grid.NewMat(4, 4)
	FillRect(m, Rect{-5, -5, 100, 2}, 1)
	if m.Sum() != 8 {
		t.Errorf("clipped fill area %v, want 8", m.Sum())
	}
}
