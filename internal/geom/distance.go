package geom

import "repro/internal/grid"

// inf is a distance larger than any possible path on a finite grid.
const inf = 1 << 29

// DistanceL1 returns, for every pixel, the city-block (L1) distance to the
// nearest set pixel, computed with the classic two-pass chamfer algorithm.
// Pixels of an image with no set pixels all get a large sentinel distance.
func DistanceL1(m *grid.Mat) *grid.Mat {
	w, h := m.W, m.H
	d := make([]int32, w*h)
	for i := range d {
		if m.Data[i] >= 0.5 {
			d[i] = 0
		} else {
			d[i] = inf
		}
	}
	// Forward pass.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if x > 0 && d[i-1]+1 < d[i] {
				d[i] = d[i-1] + 1
			}
			if y > 0 && d[i-w]+1 < d[i] {
				d[i] = d[i-w] + 1
			}
		}
	}
	// Backward pass.
	for y := h - 1; y >= 0; y-- {
		for x := w - 1; x >= 0; x-- {
			i := y*w + x
			if x < w-1 && d[i+1]+1 < d[i] {
				d[i] = d[i+1] + 1
			}
			if y < h-1 && d[i+w]+1 < d[i] {
				d[i] = d[i+w] + 1
			}
		}
	}
	out := grid.NewMat(w, h)
	for i, v := range d {
		out.Data[i] = float64(v)
	}
	return out
}

// SignedDistance returns the signed L1 distance field of a binary image:
// positive outside features (distance to the nearest set pixel), negative
// inside (minus the distance to the nearest background pixel). The zero
// level set lies on the feature boundary; this is the level-set ILT
// initialisation and reinitialisation primitive.
func SignedDistance(m *grid.Mat) *grid.Mat {
	dOut := DistanceL1(m)
	invDat := make([]float64, len(m.Data))
	for i, v := range m.Data {
		if v < 0.5 {
			invDat[i] = 1
		}
	}
	dIn := DistanceL1(grid.FromSlice(m.W, m.H, invDat))
	phi := grid.NewMat(m.W, m.H)
	for i := range phi.Data {
		if m.Data[i] >= 0.5 {
			phi.Data[i] = -dIn.Data[i] + 0.5 // inside: ≤ −0.5
		} else {
			phi.Data[i] = dOut.Data[i] - 0.5 // outside: ≥ +0.5
		}
	}
	return phi
}
