package geom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func TestTraceContoursSquare(t *testing.T) {
	m := grid.NewMat(8, 8)
	FillRect(m, Rect{2, 3, 6, 6}, 1)
	polys := TraceContours(m)
	if len(polys) != 1 {
		t.Fatalf("%d contours, want 1", len(polys))
	}
	p := polys[0]
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid polygon: %v", err)
	}
	if len(p) != 4 {
		t.Errorf("square traced with %d vertices, want 4: %v", len(p), p)
	}
	if p.Area() != 12 {
		t.Errorf("traced area %d, want 12", p.Area())
	}
	if p.BBox() != (Rect{2, 3, 6, 6}) {
		t.Errorf("traced bbox %+v", p.BBox())
	}
}

func TestTraceContoursLShape(t *testing.T) {
	m := grid.NewMat(10, 10)
	FillRect(m, Rect{1, 1, 7, 4}, 1)
	FillRect(m, Rect{1, 4, 4, 8}, 1)
	polys := TraceContours(m)
	if len(polys) != 1 {
		t.Fatalf("%d contours, want 1", len(polys))
	}
	if got := polys[0].Area(); got != 18+12 {
		t.Errorf("L area %d, want 30", got)
	}
	if len(polys[0]) != 6 {
		t.Errorf("L traced with %d vertices, want 6: %v", len(polys[0]), polys[0])
	}
}

func TestTraceContoursMultipleComponents(t *testing.T) {
	m := grid.NewMat(12, 12)
	FillRect(m, Rect{1, 1, 4, 4}, 1)
	FillRect(m, Rect{7, 7, 11, 10}, 1)
	polys := TraceContours(m)
	if len(polys) != 2 {
		t.Fatalf("%d contours, want 2", len(polys))
	}
}

func TestTraceContoursEmpty(t *testing.T) {
	if polys := TraceContours(grid.NewMat(4, 4)); len(polys) != 0 {
		t.Fatalf("empty image traced %d contours", len(polys))
	}
}

// Property: for hole-free masks (unions of overlapping rectangles placed
// apart), rasterizing the traced contours reproduces the mask exactly.
func TestTraceRasterizeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := grid.NewMat(24, 24)
		for k := 0; k < 5; k++ {
			x0, y0 := rng.Intn(18)+1, rng.Intn(18)+1
			FillRect(m, Rect{x0, y0, x0 + 1 + rng.Intn(5), y0 + 1 + rng.Intn(5)}, 1)
		}
		// Fill holes so the round-trip is exact (holes trace separately).
		inv := grid.NewMat(24, 24)
		for i, v := range m.Data {
			if v < 0.5 {
				inv.Data[i] = 1
			}
		}
		labels, comps := Label(inv)
		for _, c := range comps {
			// A background component that does not touch the border is a
			// hole; fill it.
			if c.BBox.X0 > 0 && c.BBox.Y0 > 0 && c.BBox.X1 < 24 && c.BBox.Y1 < 24 {
				for i := range m.Data {
					if labels[i] == int32(c.Label) {
						m.Data[i] = 1
					}
				}
			}
		}
		back := grid.NewMat(24, 24)
		for _, p := range TraceContours(m) {
			if err := p.Rasterize(back); err != nil {
				return false
			}
		}
		return back.Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestContourPerimeter(t *testing.T) {
	m := grid.NewMat(8, 8)
	FillRect(m, Rect{2, 2, 6, 5}, 1)
	if got := ContourPerimeter(m); got != 2*(4+3) {
		t.Errorf("perimeter %d, want 14", got)
	}
}
