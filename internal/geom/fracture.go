package geom

import "repro/internal/grid"

// Mask fracturing: decompose the set pixels of a binary mask into disjoint
// axis-aligned rectangles. The rectangle count is the paper's "#shots"
// manufacturability metric (Definition 4) — simpler, more regular masks
// fracture into fewer shots.

// FractureRunMerge decomposes the mask with the classic row-run sweep:
// each row is split into maximal runs of set pixels, and a run that exactly
// matches a rectangle still open from the previous row extends it; otherwise
// rectangles are closed/opened. The result is deterministic, covers every
// set pixel exactly once, and is the decomposition used for the #shots
// metric throughout this repository.
func FractureRunMerge(m *grid.Mat) []Rect {
	type open struct {
		x0, x1, y0 int
	}
	var rects []Rect
	var prev []open
	var cur []open
	for y := 0; y < m.H; y++ {
		cur = cur[:0]
		row := m.Data[y*m.W : (y+1)*m.W]
		x := 0
		for x < m.W {
			if row[x] < 0.5 {
				x++
				continue
			}
			x0 := x
			for x < m.W && row[x] >= 0.5 {
				x++
			}
			cur = append(cur, open{x0: x0, x1: x, y0: y})
		}
		// Match current runs against open rectangles from the previous row.
		pi := 0
		for ci := range cur {
			// Advance past previous runs strictly left of this run.
			for pi < len(prev) && prev[pi].x1 <= cur[ci].x0 {
				rects = append(rects, Rect{prev[pi].x0, prev[pi].y0, prev[pi].x1, y})
				pi++
			}
			if pi < len(prev) && prev[pi].x0 == cur[ci].x0 && prev[pi].x1 == cur[ci].x1 {
				cur[ci].y0 = prev[pi].y0 // exact match: extend
				pi++
			} else {
				// Close every previous run overlapping this one.
				for pi < len(prev) && prev[pi].x0 < cur[ci].x1 {
					rects = append(rects, Rect{prev[pi].x0, prev[pi].y0, prev[pi].x1, y})
					pi++
				}
			}
		}
		for ; pi < len(prev); pi++ {
			rects = append(rects, Rect{prev[pi].x0, prev[pi].y0, prev[pi].x1, y})
		}
		prev = append(prev[:0], cur...)
	}
	for _, p := range prev {
		rects = append(rects, Rect{p.x0, p.y0, p.x1, m.H})
	}
	return rects
}

// ShotCount returns the number of rectangles in the run-merge fracturing —
// the #shots metric.
func ShotCount(m *grid.Mat) int {
	return len(FractureRunMerge(m))
}

// FractureGreedy repeatedly extracts the largest all-set rectangle (largest
// rectangle under a histogram, swept over rows) until the mask is empty.
// It usually produces fewer, larger shots than run-merge at much higher
// cost; it exists as a cross-check and for post-processing. The input is
// not modified.
func FractureGreedy(m *grid.Mat) []Rect {
	work := m.Clone()
	var rects []Rect
	heights := make([]int, work.W)
	type stackEntry struct{ x, h int }
	for {
		// Largest rectangle of 1s via histogram sweep.
		for i := range heights {
			heights[i] = 0
		}
		var best Rect
		bestArea := 0
		for y := 0; y < work.H; y++ {
			row := work.Data[y*work.W : (y+1)*work.W]
			for x := 0; x < work.W; x++ {
				if row[x] >= 0.5 {
					heights[x]++
				} else {
					heights[x] = 0
				}
			}
			var stack []stackEntry
			for x := 0; x <= work.W; x++ {
				h := 0
				if x < work.W {
					h = heights[x]
				}
				start := x
				for len(stack) > 0 && stack[len(stack)-1].h >= h {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					area := top.h * (x - top.x)
					if area > bestArea {
						bestArea = area
						best = Rect{X0: top.x, Y0: y + 1 - top.h, X1: x, Y1: y + 1}
					}
					start = top.x
				}
				if x < work.W {
					stack = append(stack, stackEntry{x: start, h: h})
				}
			}
		}
		if bestArea == 0 {
			break
		}
		rects = append(rects, best)
		FillRect(work, best, 0)
	}
	return rects
}
