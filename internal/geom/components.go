// Package geom provides the rectilinear raster geometry the ILT flow is
// built on: connected-component labelling, box morphology, rectangle
// fracturing (the #shots metric of the paper), Manhattan-polygon
// rasterization for the layout substrate, and target-edge extraction for
// EPE measurement.
//
// Binary images are represented as grid.Mat values containing 0/1; any
// value ≥ 0.5 is treated as set.
package geom

import "repro/internal/grid"

// Rect is a half-open axis-aligned rectangle [X0, X1) × [Y0, Y1) in pixels.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// W returns the rectangle width.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the rectangle height.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Area returns the rectangle area in pixels.
func (r Rect) Area() int { return r.W() * r.H() }

// Empty reports whether the rectangle has no interior.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	if o.X0 < r.X0 {
		r.X0 = o.X0
	}
	if o.Y0 < r.Y0 {
		r.Y0 = o.Y0
	}
	if o.X1 > r.X1 {
		r.X1 = o.X1
	}
	if o.Y1 > r.Y1 {
		r.Y1 = o.Y1
	}
	return r
}

// Intersect returns the overlap of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	if o.X0 > r.X0 {
		r.X0 = o.X0
	}
	if o.Y0 > r.Y0 {
		r.Y0 = o.Y0
	}
	if o.X1 < r.X1 {
		r.X1 = o.X1
	}
	if o.Y1 < r.Y1 {
		r.Y1 = o.Y1
	}
	return r
}

// Component is one 4-connected region of set pixels.
type Component struct {
	Label int
	Area  int
	BBox  Rect
}

// on reports whether the pixel at flat index i is set.
func on(m *grid.Mat, i int) bool { return m.Data[i] >= 0.5 }

// Label performs 4-connected component labelling. It returns the label map
// (0 = background, components numbered from 1) and the component table.
func Label(m *grid.Mat) ([]int32, []Component) {
	labels := make([]int32, len(m.Data))
	var comps []Component
	var stack []int32
	next := int32(0)
	for start := range m.Data {
		if labels[start] != 0 || !on(m, start) {
			continue
		}
		next++
		comp := Component{Label: int(next), BBox: Rect{X0: m.W, Y0: m.H, X1: 0, Y1: 0}}
		stack = append(stack[:0], int32(start))
		labels[start] = next
		for len(stack) > 0 {
			i := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			x, y := i%m.W, i/m.W
			comp.Area++
			if x < comp.BBox.X0 {
				comp.BBox.X0 = x
			}
			if y < comp.BBox.Y0 {
				comp.BBox.Y0 = y
			}
			if x+1 > comp.BBox.X1 {
				comp.BBox.X1 = x + 1
			}
			if y+1 > comp.BBox.Y1 {
				comp.BBox.Y1 = y + 1
			}
			if x > 0 && labels[i-1] == 0 && on(m, i-1) {
				labels[i-1] = next
				stack = append(stack, int32(i-1))
			}
			if x+1 < m.W && labels[i+1] == 0 && on(m, i+1) {
				labels[i+1] = next
				stack = append(stack, int32(i+1))
			}
			if y > 0 && labels[i-m.W] == 0 && on(m, i-m.W) {
				labels[i-m.W] = next
				stack = append(stack, int32(i-m.W))
			}
			if y+1 < m.H && labels[i+m.W] == 0 && on(m, i+m.W) {
				labels[i+m.W] = next
				stack = append(stack, int32(i+m.W))
			}
		}
		comps = append(comps, comp)
	}
	return labels, comps
}

// Components returns the 4-connected components of the binary image.
func Components(m *grid.Mat) []Component {
	_, comps := Label(m)
	return comps
}

// FillRect sets every pixel of r (clipped to the image) to v.
func FillRect(m *grid.Mat, r Rect, v float64) {
	r = r.Intersect(Rect{0, 0, m.W, m.H})
	if r.Empty() {
		return
	}
	for y := r.Y0; y < r.Y1; y++ {
		row := m.Data[y*m.W : (y+1)*m.W]
		for x := r.X0; x < r.X1; x++ {
			row[x] = v
		}
	}
}

// RemoveComponent clears every pixel carrying the given label.
func RemoveComponent(m *grid.Mat, labels []int32, label int) {
	for i := range m.Data {
		if labels[i] == int32(label) {
			m.Data[i] = 0
		}
	}
}
