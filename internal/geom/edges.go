package geom

import "repro/internal/grid"

// EPE measurement geometry (Definition 3 of the paper): sample points are
// distributed evenly along the horizontal and vertical contour segments of
// the target image; at each point the printed contour is compared to the
// target contour along the edge normal.

// Orientation of an edge segment.
type Orientation int

const (
	// Horizontal edges run along X; their normal is vertical.
	Horizontal Orientation = iota
	// Vertical edges run along Y; their normal is horizontal.
	Vertical
)

// Segment is one maximal straight contour segment of a binary image, in
// boundary coordinates: a horizontal segment at Y=y separates pixel rows
// y-1 and y and spans pixels [X0, X1); Inward is the direction (±1) from
// the boundary toward the feature interior along the normal axis.
type Segment struct {
	Orient Orientation
	// Pos is the boundary coordinate (y for horizontal, x for vertical).
	Pos int
	// Lo, Hi delimit the segment along its running axis, half-open.
	Lo, Hi int
	// Inward is +1 if the feature interior lies at increasing normal
	// coordinate, −1 otherwise.
	Inward int
}

// Len returns the segment length in pixels.
func (s Segment) Len() int { return s.Hi - s.Lo }

// EdgeSegments extracts all maximal horizontal and vertical contour
// segments of the binary image. The image border counts as background, so
// features touching the border still produce contour there.
func EdgeSegments(m *grid.Mat) []Segment {
	var segs []Segment
	at := func(x, y int) bool {
		if x < 0 || x >= m.W || y < 0 || y >= m.H {
			return false
		}
		return m.Data[y*m.W+x] >= 0.5
	}
	// Horizontal segments: boundary between rows y-1 and y, for y in [0, H].
	for y := 0; y <= m.H; y++ {
		x := 0
		for x < m.W {
			below := at(x, y)   // pixel at row y (below the boundary line)
			above := at(x, y-1) // pixel at row y-1 (above the boundary line)
			if below == above { // no contour here
				x++
				continue
			}
			inward := 1 // feature below → interior at increasing y
			if above {
				inward = -1
			}
			x0 := x
			for x < m.W {
				b, a := at(x, y), at(x, y-1)
				if b == a || (b && inward != 1) || (a && inward != -1) {
					break
				}
				x++
			}
			segs = append(segs, Segment{Orient: Horizontal, Pos: y, Lo: x0, Hi: x, Inward: inward})
		}
	}
	// Vertical segments: boundary between columns x-1 and x.
	for x := 0; x <= m.W; x++ {
		y := 0
		for y < m.H {
			right := at(x, y)
			left := at(x-1, y)
			if right == left {
				y++
				continue
			}
			inward := 1
			if left {
				inward = -1
			}
			y0 := y
			for y < m.H {
				r, l := at(x, y), at(x-1, y)
				if r == l || (r && inward != 1) || (l && inward != -1) {
					break
				}
				y++
			}
			segs = append(segs, Segment{Orient: Vertical, Pos: x, Lo: y0, Hi: y, Inward: inward})
		}
	}
	return segs
}

// SamplePoint is one EPE measurement site: a position on the contour plus
// the inward normal.
type SamplePoint struct {
	// X, Y are the pixel just inside the feature adjacent to the contour.
	X, Y int
	// NX, NY is the inward unit normal.
	NX, NY int
}

// SampleEdges places measurement points along every segment at the given
// spacing (in pixels), starting half a spacing in from each segment end, so
// short segments of at least spacing/2 length still receive one point.
func SampleEdges(segs []Segment, spacing int) []SamplePoint {
	if spacing < 1 {
		spacing = 1
	}
	var pts []SamplePoint
	for _, s := range segs {
		for c := s.Lo + spacing/2; c < s.Hi; c += spacing {
			var p SamplePoint
			switch s.Orient {
			case Horizontal:
				p.NX, p.NY = 0, s.Inward
				p.X = c
				if s.Inward > 0 {
					p.Y = s.Pos // feature pixel at row Pos
				} else {
					p.Y = s.Pos - 1
				}
			case Vertical:
				p.NX, p.NY = s.Inward, 0
				p.Y = c
				if s.Inward > 0 {
					p.X = s.Pos
				} else {
					p.X = s.Pos - 1
				}
			}
			pts = append(pts, p)
		}
	}
	return pts
}
