package geom_test

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/grid"
)

func ExampleFractureRunMerge() {
	m := grid.NewMat(8, 8)
	geom.FillRect(m, geom.Rect{X0: 1, Y0: 1, X1: 6, Y1: 3}, 1)
	geom.FillRect(m, geom.Rect{X0: 1, Y0: 3, X1: 3, Y1: 6}, 1) // L-shape
	for _, r := range geom.FractureRunMerge(m) {
		fmt.Printf("shot %dx%d at (%d,%d)\n", r.W(), r.H(), r.X0, r.Y0)
	}
	// Output:
	// shot 5x2 at (1,1)
	// shot 2x3 at (1,3)
}

func ExampleComponents() {
	m := grid.NewMat(8, 4)
	geom.FillRect(m, geom.Rect{X0: 0, Y0: 0, X1: 2, Y1: 2}, 1)
	geom.FillRect(m, geom.Rect{X0: 5, Y0: 1, X1: 8, Y1: 3}, 1)
	for _, c := range geom.Components(m) {
		fmt.Printf("component area %d bbox %dx%d\n", c.Area, c.BBox.W(), c.BBox.H())
	}
	// Output:
	// component area 4 bbox 2x2
	// component area 6 bbox 3x2
}

func ExampleTraceContours() {
	m := grid.NewMat(6, 6)
	geom.FillRect(m, geom.Rect{X0: 1, Y0: 1, X1: 5, Y1: 4}, 1)
	for _, p := range geom.TraceContours(m) {
		fmt.Printf("%d vertices, area %d\n", len(p), p.Area())
	}
	// Output:
	// 4 vertices, area 12
}
