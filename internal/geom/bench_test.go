package geom

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// benchMask is a 512² mask with a few hundred rectangles — the shape and
// density of a post-ILT mask at harness scale.
func benchMask() *grid.Mat {
	rng := rand.New(rand.NewSource(3))
	m := grid.NewMat(512, 512)
	for k := 0; k < 300; k++ {
		x0, y0 := rng.Intn(480), rng.Intn(480)
		FillRect(m, Rect{x0, y0, x0 + 4 + rng.Intn(28), y0 + 4 + rng.Intn(28)}, 1)
	}
	return m
}

func BenchmarkFractureRunMerge(b *testing.B) {
	m := benchMask()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(FractureRunMerge(m)) == 0 {
			b.Fatal("empty fracture")
		}
	}
}

func BenchmarkLabelComponents(b *testing.B) {
	m := benchMask()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Components(m)) == 0 {
			b.Fatal("no components")
		}
	}
}

func BenchmarkDilateBox(b *testing.B) {
	m := benchMask()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DilateBox(m, 8)
	}
}

func BenchmarkSignedDistance(b *testing.B) {
	m := benchMask()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SignedDistance(m)
	}
}

func BenchmarkEdgeSegments(b *testing.B) {
	m := benchMask()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(EdgeSegments(m)) == 0 {
			b.Fatal("no segments")
		}
	}
}
