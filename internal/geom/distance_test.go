package geom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func TestDistanceL1SinglePoint(t *testing.T) {
	m := grid.NewMat(7, 7)
	m.Set(3, 3, 1)
	d := DistanceL1(m)
	for y := 0; y < 7; y++ {
		for x := 0; x < 7; x++ {
			want := float64(absInt(x-3) + absInt(y-3))
			if d.At(x, y) != want {
				t.Fatalf("d(%d,%d) = %v, want %v", x, y, d.At(x, y), want)
			}
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestDistanceL1MatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := grid.NewMat(12, 10)
		for i := range m.Data {
			if rng.Float64() < 0.15 {
				m.Data[i] = 1
			}
		}
		if m.Sum() == 0 {
			m.Set(0, 0, 1)
		}
		d := DistanceL1(m)
		for y := 0; y < m.H; y++ {
			for x := 0; x < m.W; x++ {
				best := 1 << 30
				for yy := 0; yy < m.H; yy++ {
					for xx := 0; xx < m.W; xx++ {
						if m.At(xx, yy) >= 0.5 {
							if v := absInt(x-xx) + absInt(y-yy); v < best {
								best = v
							}
						}
					}
				}
				if d.At(x, y) != float64(best) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSignedDistanceSigns(t *testing.T) {
	m := grid.NewMat(16, 16)
	FillRect(m, Rect{X0: 4, Y0: 4, X1: 12, Y1: 12}, 1)
	phi := SignedDistance(m)
	if phi.At(8, 8) >= 0 {
		t.Errorf("interior φ = %v, want negative", phi.At(8, 8))
	}
	if phi.At(0, 0) <= 0 {
		t.Errorf("exterior φ = %v, want positive", phi.At(0, 0))
	}
	// Thresholding φ < 0 recovers the original binary image.
	for i := range m.Data {
		inside := phi.Data[i] < 0
		if inside != (m.Data[i] >= 0.5) {
			t.Fatal("sign of φ does not match the binary image")
		}
	}
	// Deep interior is more negative than the boundary ring.
	if phi.At(8, 8) >= phi.At(4, 4) {
		t.Errorf("φ center %v not below φ boundary %v", phi.At(8, 8), phi.At(4, 4))
	}
}
