package metrics

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func windowMask(t *testing.T) (*grid.Mat, *grid.Mat) {
	t.Helper()
	tgt := grid.NewMat(128, 128)
	geom.FillRect(tgt, geom.Rect{X0: 40, Y0: 48, X1: 88, Y1: 80}, 1)
	return tgt, tgt.Clone()
}

func TestDoseWindowMonotoneArea(t *testing.T) {
	p := process(t)
	tgt, m := windowMask(t)
	doses := []float64{0.94, 0.98, 1.0, 1.02, 1.06}
	pts, err := DoseWindow(p, m, tgt, doses, false, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(doses) {
		t.Fatalf("%d points, want %d", len(pts), len(doses))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Area < pts[i-1].Area {
			t.Errorf("printed area not monotone in dose: %v", pts)
			break
		}
	}
}

func TestDoseWindowWithDefocus(t *testing.T) {
	p := process(t)
	tgt, m := windowMask(t)
	pts, err := DoseWindow(p, m, tgt, []float64{1.0}, true, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2 (nominal + defocus)", len(pts))
	}
	if pts[0].Defocused || !pts[1].Defocused {
		t.Error("defocus flags wrong")
	}
	// Defocus blurs the aerial image; the thresholded area may round to the
	// same pixel count on easy patterns, so compare intensities directly.
	fNom, err := p.Sim.Forward(m, p.Sim.Model.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	fDef, err := p.Sim.Forward(m, p.Sim.Model.Defocus, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	diff := fNom.Intensity.Clone()
	diff.Sub(fDef.Intensity)
	if diff.MaxAbs() < 1e-6 {
		t.Error("defocus aerial image identical to nominal")
	}
	if pts[0].Area == 0 || pts[1].Area == 0 {
		t.Error("window points did not print")
	}
}

func TestDoseWindowValidation(t *testing.T) {
	p := process(t)
	tgt, m := windowMask(t)
	if _, err := DoseWindow(p, m, tgt, nil, false, 10, 4); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := DoseWindow(p, m, tgt, []float64{0}, false, 10, 4); err == nil {
		t.Error("zero dose accepted")
	}
}

func TestPVBandLadderMonotone(t *testing.T) {
	p := process(t)
	_, m := windowMask(t)
	deltas := []float64{0, 0.01, 0.02, 0.04}
	bands, err := PVBandLadder(p, m, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != len(deltas) {
		t.Fatalf("%d bands", len(bands))
	}
	// Wider dose window ⊇ narrower one, so the band grows monotonically.
	for i := 1; i < len(bands); i++ {
		if bands[i] < bands[i-1] {
			t.Errorf("PVB not monotone in dose delta: %v", bands)
			break
		}
	}
	// delta = 0 still has the focus excursion, so the band need not be 0,
	// but it must be the smallest rung.
	if bands[0] > bands[len(bands)-1] {
		t.Error("zero-delta band exceeds widest band")
	}
}

func TestPVBandLadderValidation(t *testing.T) {
	p := process(t)
	_, m := windowMask(t)
	if _, err := PVBandLadder(p, m, []float64{-0.1}); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := PVBandLadder(p, m, []float64{1}); err == nil {
		t.Error("delta = 1 accepted")
	}
}

// The paper's PVB (Definition 2) must equal the 0.02 rung of the ladder.
func TestPVBandLadderMatchesDefinition2(t *testing.T) {
	p := process(t)
	_, m := windowMask(t)
	bands, err := PVBandLadder(p, m, []float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	zIn, err := p.Print(m, p.Inner())
	if err != nil {
		t.Fatal(err)
	}
	zOut, err := p.Print(m, p.Outer())
	if err != nil {
		t.Fatal(err)
	}
	if want := PVBand(zIn, zOut); bands[0] != want {
		t.Errorf("ladder rung %v != Definition 2 PVB %v", bands[0], want)
	}
}

func TestCDBasics(t *testing.T) {
	z := grid.NewMat(32, 32)
	geom.FillRect(z, geom.Rect{X0: 10, Y0: 8, X1: 22, Y1: 24}, 1)
	cd, err := CD(z, CutLine{Horizontal: true, X: 15, Y: 16})
	if err != nil {
		t.Fatal(err)
	}
	if cd != 12 {
		t.Errorf("horizontal CD %d, want 12", cd)
	}
	cd, err = CD(z, CutLine{Horizontal: false, X: 15, Y: 16})
	if err != nil {
		t.Fatal(err)
	}
	if cd != 16 {
		t.Errorf("vertical CD %d, want 16", cd)
	}
	cd, err = CD(z, CutLine{Horizontal: true, X: 2, Y: 2})
	if err != nil || cd != 0 {
		t.Errorf("unprinted anchor CD %d err %v, want 0", cd, err)
	}
	if _, err := CD(z, CutLine{X: 99, Y: 0}); err == nil {
		t.Error("out-of-bounds anchor accepted")
	}
}

func TestCDThroughDoseMonotone(t *testing.T) {
	p := process(t)
	_, m := windowMask(t)
	cut := CutLine{Horizontal: true, X: 64, Y: 64}
	doses := []float64{0.94, 1.0, 1.06}
	pts, err := CDThroughDose(p, m, cut, doses)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("%d points, want 6 (2 focus × 3 dose)", len(pts))
	}
	// CD grows with dose at fixed focus (brightfield clear feature).
	for f := 0; f < 2; f++ {
		base := f * 3
		if !(pts[base].CDPx <= pts[base+1].CDPx && pts[base+1].CDPx <= pts[base+2].CDPx) {
			t.Errorf("CD not monotone in dose: %+v", pts[base:base+3])
		}
		if pts[base+1].CDPx == 0 {
			t.Error("feature did not print at nominal dose")
		}
	}
	if _, err := CDThroughDose(p, m, cut, nil); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := CDThroughDose(p, m, cut, []float64{-1}); err == nil {
		t.Error("negative dose accepted")
	}
}
