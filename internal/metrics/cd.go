package metrics

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/litho"
)

// Critical-dimension measurement: the printed width of a feature along a
// cut line, swept through dose (and optionally focus) — the data behind
// Bossung plots and the standard way fabs quantify a process window.

// CutLine describes a CD measurement site: a 1-pixel-wide cut through a
// feature. Horizontal cuts measure the printed width along X at row Y;
// vertical cuts measure along Y at column X.
type CutLine struct {
	Horizontal bool
	// X, Y anchor the cut: for horizontal cuts Y is the row and X a point
	// inside the feature; vice versa for vertical cuts.
	X, Y int
}

// CD returns the printed critical dimension in pixels at the cut: the
// length of the contiguous printed run containing the anchor (0 when the
// anchor is unprinted).
func CD(z *grid.Mat, cut CutLine) (int, error) {
	if cut.X < 0 || cut.X >= z.W || cut.Y < 0 || cut.Y >= z.H {
		return 0, fmt.Errorf("metrics: cut anchor (%d,%d) outside %dx%d image", cut.X, cut.Y, z.W, z.H)
	}
	on := func(x, y int) bool { return z.Data[y*z.W+x] >= 0.5 }
	if !on(cut.X, cut.Y) {
		return 0, nil
	}
	n := 1
	if cut.Horizontal {
		for x := cut.X - 1; x >= 0 && on(x, cut.Y); x-- {
			n++
		}
		for x := cut.X + 1; x < z.W && on(x, cut.Y); x++ {
			n++
		}
	} else {
		for y := cut.Y - 1; y >= 0 && on(cut.X, y); y-- {
			n++
		}
		for y := cut.Y + 1; y < z.H && on(cut.X, y); y++ {
			n++
		}
	}
	return n, nil
}

// BossungPoint is one (dose, focus condition) → CD sample.
type BossungPoint struct {
	Dose      float64
	Defocused bool
	CDPx      int
}

// CDThroughDose prints the mask across the dose ladder at nominal focus
// and defocus and measures the CD at the cut — the Bossung data for one
// measurement site.
func CDThroughDose(p *litho.Process, maskImg *grid.Mat, cut CutLine, doses []float64) ([]BossungPoint, error) {
	if len(doses) == 0 {
		return nil, fmt.Errorf("metrics: empty dose ladder")
	}
	var out []BossungPoint
	for _, defocused := range []bool{false, true} {
		ks := p.Sim.Model.Nominal
		if defocused {
			ks = p.Sim.Model.Defocus
		}
		for _, d := range doses {
			if d <= 0 {
				return nil, fmt.Errorf("metrics: non-positive dose %g", d)
			}
			z, err := p.Print(maskImg, litho.Corner{Name: "bossung", KS: ks, Dose: d})
			if err != nil {
				return nil, err
			}
			cd, err := CD(z, cut)
			if err != nil {
				return nil, err
			}
			out = append(out, BossungPoint{Dose: d, Defocused: defocused, CDPx: cd})
		}
	}
	return out, nil
}
