// Package metrics implements the four evaluation metrics of the paper
// (Section II-B): squared L2 loss, PVBand, EPE violation count, and mask
// fracturing shot count, plus the combined per-case evaluation used by
// every table.
//
// All pixel metrics are reported in px² (or counts). At the paper's scale
// (1 nm/px) px² equals nm²; reduced-resolution harnesses convert with
// PixelArea.
package metrics

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/litho"
)

// Paper-scale measurement constants (ICCAD 2013 contest conventions).
const (
	// EPEThresholdNM is thr of Eq. (4).
	EPEThresholdNM = 15
	// EPESpacingNM is the distance between EPE measurement points along
	// target contours.
	EPESpacingNM = 40
)

// L2 returns the squared L2 loss ‖a − b‖² (Definition 1). For binary
// images this is the XOR area in px².
func L2(a, b *grid.Mat) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("metrics: L2 shape mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	var s float64
	for i, v := range a.Data {
		d := v - b.Data[i]
		s += d * d
	}
	return s
}

// PVBand returns the process-variation band (Definition 2): the XOR area of
// the binary prints at the inner and outer corners, in px².
func PVBand(zin, zout *grid.Mat) float64 {
	if zin.W != zout.W || zin.H != zout.H {
		panic(fmt.Sprintf("metrics: PVBand shape mismatch %dx%d vs %dx%d", zin.W, zin.H, zout.W, zout.H))
	}
	var s float64
	for i, v := range zin.Data {
		a := v >= 0.5
		b := zout.Data[i] >= 0.5
		if a != b {
			s++
		}
	}
	return s
}

// EPE counts edge-placement-error violations (Definition 3, Eq. 4):
// measurement points are placed every spacingPx along the horizontal and
// vertical contours of the target; a point violates if the printed contour
// deviates from the target contour by at least thrPx along the edge normal.
// In the discrete raster this means: the pixel thrPx inside the feature is
// unprinted (edge pulled in too far) or the pixel thrPx outside is printed
// (edge pushed out too far).
func EPE(target, printed *grid.Mat, spacingPx, thrPx int) int {
	if target.W != printed.W || target.H != printed.H {
		panic(fmt.Sprintf("metrics: EPE shape mismatch %dx%d vs %dx%d", target.W, target.H, printed.W, printed.H))
	}
	pts := geom.SampleEdges(geom.EdgeSegments(target), spacingPx)
	at := func(m *grid.Mat, x, y int) bool {
		if x < 0 || x >= m.W || y < 0 || y >= m.H {
			return false
		}
		return m.Data[y*m.W+x] >= 0.5
	}
	violations := 0
	for _, p := range pts {
		ix, iy := p.X+p.NX*(thrPx-1), p.Y+p.NY*(thrPx-1) // deep inside
		ox, oy := p.X-p.NX*thrPx, p.Y-p.NY*thrPx         // beyond the edge
		inner := at(target, ix, iy) && !at(printed, ix, iy)
		outer := at(printed, ox, oy) && !at(target, ox, oy)
		if inner || outer {
			violations++
		}
	}
	return violations
}

// Shots returns the mask fracturing shot count (Definition 4) using the
// deterministic run-merge decomposition.
func Shots(m *grid.Mat) int { return geom.ShotCount(m) }

// Report is one row of the paper's tables.
type Report struct {
	L2    float64 // squared L2 loss, px²
	PVB   float64 // PVBand, px²
	EPE   int     // EPE violations
	Shots int     // fracturing shot count
	TAT   float64 // turnaround time, seconds (filled by the caller)
}

// Scale converts the area metrics to nm² for a pixel of the given linear
// size in nm (EPE/Shots/TAT are unit-free).
func (r Report) Scale(pixelNM float64) Report {
	a := pixelNM * pixelNM
	r.L2 *= a
	r.PVB *= a
	return r
}

// Evaluate runs the full contest evaluation of a finished binary mask
// against a target: exact lithography at the three corners, then all four
// metrics. EPE geometry parameters are in pixels; pass the nm-scaled values
// when running below paper resolution.
func Evaluate(p *litho.Process, maskOut, target *grid.Mat, epeSpacingPx, epeThrPx int) (Report, error) {
	var r Report
	zNorm, err := p.Print(maskOut, p.Nominal())
	if err != nil {
		return r, fmt.Errorf("metrics: nominal print: %w", err)
	}
	zIn, err := p.Print(maskOut, p.Inner())
	if err != nil {
		return r, fmt.Errorf("metrics: inner print: %w", err)
	}
	zOut, err := p.Print(maskOut, p.Outer())
	if err != nil {
		return r, fmt.Errorf("metrics: outer print: %w", err)
	}
	r.L2 = L2(zNorm, target)
	r.PVB = PVBand(zIn, zOut)
	r.EPE = EPE(target, zNorm, epeSpacingPx, epeThrPx)
	r.Shots = Shots(maskOut)
	return r, nil
}
