package metrics

import (
	"math"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/optics"
)

var (
	procOnce sync.Once
	proc     *litho.Process
)

func process(t testing.TB) *litho.Process {
	t.Helper()
	procOnce.Do(func() {
		m, err := optics.BuildModel(optics.TestScale())
		if err != nil {
			panic(err)
		}
		proc = litho.NewProcess(m)
	})
	return proc
}

func TestL2BasicAndSymmetry(t *testing.T) {
	a := grid.FromSlice(2, 2, []float64{1, 0, 1, 0})
	b := grid.FromSlice(2, 2, []float64{1, 1, 0, 0})
	if got := L2(a, b); got != 2 {
		t.Errorf("L2 = %v, want 2", got)
	}
	if L2(a, b) != L2(b, a) {
		t.Error("L2 not symmetric")
	}
	if L2(a, a) != 0 {
		t.Error("L2(a,a) != 0")
	}
}

func TestL2ContinuousValues(t *testing.T) {
	a := grid.FromSlice(2, 1, []float64{0.5, 0.25})
	b := grid.FromSlice(2, 1, []float64{0.0, 0.0})
	if got := L2(a, b); math.Abs(got-0.3125) > 1e-12 {
		t.Errorf("L2 = %v, want 0.3125", got)
	}
}

func TestPVBandXOR(t *testing.T) {
	in := grid.FromSlice(2, 2, []float64{1, 0, 0, 0})
	out := grid.FromSlice(2, 2, []float64{1, 1, 1, 0})
	if got := PVBand(in, out); got != 2 {
		t.Errorf("PVBand = %v, want 2", got)
	}
	if PVBand(in, in) != 0 {
		t.Error("PVBand of identical prints != 0")
	}
}

func TestPVBandSubsetOfUnionMinusIntersection(t *testing.T) {
	// PVB equals |union| − |intersection| by definition of XOR.
	in := grid.FromSlice(3, 1, []float64{1, 1, 0})
	out := grid.FromSlice(3, 1, []float64{0, 1, 1})
	union, inter := 0.0, 0.0
	for i := range in.Data {
		a, b := in.Data[i] >= 0.5, out.Data[i] >= 0.5
		if a || b {
			union++
		}
		if a && b {
			inter++
		}
	}
	if got := PVBand(in, out); got != union-inter {
		t.Errorf("PVB %v != union−inter %v", got, union-inter)
	}
}

func TestEPEZeroOnPerfectPrint(t *testing.T) {
	tgt := grid.NewMat(64, 64)
	geom.FillRect(tgt, geom.Rect{X0: 16, Y0: 16, X1: 48, Y1: 48}, 1)
	if got := EPE(tgt, tgt, 10, 4); got != 0 {
		t.Errorf("EPE on identical images = %d, want 0", got)
	}
}

func TestEPEDetectsRecededEdge(t *testing.T) {
	tgt := grid.NewMat(64, 64)
	geom.FillRect(tgt, geom.Rect{X0: 16, Y0: 16, X1: 48, Y1: 48}, 1)
	// Printed image shrunk by 6 px on every side: with thr = 4 every sample
	// point sees the inner probe unprinted.
	printed := grid.NewMat(64, 64)
	geom.FillRect(printed, geom.Rect{X0: 22, Y0: 22, X1: 42, Y1: 42}, 1)
	if got := EPE(tgt, printed, 10, 4); got == 0 {
		t.Error("EPE missed a 6 px edge recession with thr=4")
	}
	// A 2 px recession is within tolerance.
	printed2 := grid.NewMat(64, 64)
	geom.FillRect(printed2, geom.Rect{X0: 18, Y0: 18, X1: 46, Y1: 46}, 1)
	if got := EPE(tgt, printed2, 10, 4); got != 0 {
		t.Errorf("EPE = %d on a 2 px recession with thr=4, want 0", got)
	}
}

func TestEPEDetectsBulgedEdge(t *testing.T) {
	tgt := grid.NewMat(64, 64)
	geom.FillRect(tgt, geom.Rect{X0: 24, Y0: 24, X1: 40, Y1: 40}, 1)
	printed := grid.NewMat(64, 64)
	geom.FillRect(printed, geom.Rect{X0: 18, Y0: 18, X1: 46, Y1: 46}, 1)
	if got := EPE(tgt, printed, 8, 4); got == 0 {
		t.Error("EPE missed a 6 px edge bulge with thr=4")
	}
}

func TestEPEMonotoneInThreshold(t *testing.T) {
	tgt := grid.NewMat(64, 64)
	geom.FillRect(tgt, geom.Rect{X0: 16, Y0: 16, X1: 48, Y1: 48}, 1)
	printed := grid.NewMat(64, 64)
	geom.FillRect(printed, geom.Rect{X0: 20, Y0: 20, X1: 44, Y1: 44}, 1)
	loose := EPE(tgt, printed, 8, 6)
	tight := EPE(tgt, printed, 8, 3)
	if loose > tight {
		t.Errorf("EPE not monotone: thr=6 → %d, thr=3 → %d", loose, tight)
	}
}

func TestShotsMatchesGeom(t *testing.T) {
	m := grid.NewMat(16, 16)
	geom.FillRect(m, geom.Rect{X0: 2, Y0: 2, X1: 8, Y1: 8}, 1)
	geom.FillRect(m, geom.Rect{X0: 10, Y0: 10, X1: 14, Y1: 12}, 1)
	if got := Shots(m); got != 2 {
		t.Errorf("Shots = %d, want 2", got)
	}
}

func TestReportScale(t *testing.T) {
	r := Report{L2: 100, PVB: 50, EPE: 3, Shots: 7}
	s := r.Scale(4)
	if s.L2 != 1600 || s.PVB != 800 {
		t.Errorf("scaled areas %v %v, want 1600 800", s.L2, s.PVB)
	}
	if s.EPE != 3 || s.Shots != 7 {
		t.Error("unit-free metrics were scaled")
	}
}

// TestEvaluateEndToEnd: the target itself used as a mask prints something,
// and the evaluation pipeline returns finite, sane metrics.
func TestEvaluateEndToEnd(t *testing.T) {
	p := process(t)
	const n = 128
	tgt := grid.NewMat(n, n)
	geom.FillRect(tgt, geom.Rect{X0: 40, Y0: 48, X1: 88, Y1: 80}, 1)
	rep, err := Evaluate(p, tgt, tgt, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.L2 < 0 || rep.PVB < 0 || rep.EPE < 0 || rep.Shots < 1 {
		t.Errorf("implausible report %+v", rep)
	}
	// The raw target is never a perfect mask under partial coherence: the
	// print deviates somewhere, so L2 > 0 (this is the whole point of ILT).
	if rep.L2 == 0 {
		t.Error("L2 of un-corrected mask is zero — simulation too forgiving")
	}
	if rep.PVB == 0 {
		t.Error("PVBand is zero across a 4% dose window")
	}
}

// TestEvaluateBetterMaskScoresBetter: a mask biased outward (simple OPC-like
// sizing) should beat the raw target mask on L2 — the ordering property all
// table comparisons depend on.
func TestEvaluateOrderingSanity(t *testing.T) {
	p := process(t)
	const n = 128
	tgt := grid.NewMat(n, n)
	geom.FillRect(tgt, geom.Rect{X0: 40, Y0: 48, X1: 88, Y1: 80}, 1)

	raw, err := Evaluate(p, tgt, tgt, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	best := raw
	improved := false
	// I_th = 0.225 < 0.25 prints features slightly oversized, so inward
	// bias is the helpful direction; sweep both to stay model-agnostic.
	for bias := -4; bias <= 4; bias++ {
		if bias == 0 {
			continue
		}
		biased := grid.NewMat(n, n)
		geom.FillRect(biased, geom.Rect{X0: 40 - bias, Y0: 48 - bias, X1: 88 + bias, Y1: 80 + bias}, 1)
		rep, err := Evaluate(p, biased, tgt, 10, 4)
		if err != nil {
			t.Fatal(err)
		}
		if rep.L2 < best.L2 {
			best = rep
			improved = true
		}
	}
	if !improved {
		t.Errorf("no mask bias improved L2 over raw mask (%v) — threshold model suspicious", raw.L2)
	}
}

func TestMetricShapeMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"L2":  func() { L2(grid.NewMat(2, 2), grid.NewMat(3, 2)) },
		"PVB": func() { PVBand(grid.NewMat(2, 2), grid.NewMat(3, 2)) },
		"EPE": func() { EPE(grid.NewMat(2, 2), grid.NewMat(3, 2), 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched shapes did not panic", name)
				}
			}()
			f()
		}()
	}
}
