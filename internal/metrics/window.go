package metrics

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/litho"
)

// Process-window analysis: the paper evaluates a single ±2% dose / defocus
// pair (Definition 2); production flows sweep a ladder of conditions. These
// helpers generalise PVBand to arbitrary dose excursions and report how the
// printed image degrades across the window — an extension used by the
// `window` experiment.

// WindowPoint is the evaluation of one process condition.
type WindowPoint struct {
	// Dose is the exposure scale factor (1 = nominal).
	Dose float64
	// Defocused reports whether the defocus kernel set was used.
	Defocused bool
	// Area is the printed area in px².
	Area float64
	// L2 is the squared L2 loss against the target in px².
	L2 float64
	// EPE is the violation count against the target.
	EPE int
}

// DoseWindow prints the mask at every dose in the ladder (at nominal focus
// and, when withDefocus is set, also defocused) and evaluates each
// condition against the target.
func DoseWindow(p *litho.Process, maskImg, target *grid.Mat, doses []float64, withDefocus bool, epeSpacingPx, epeThrPx int) ([]WindowPoint, error) {
	if len(doses) == 0 {
		return nil, fmt.Errorf("metrics: empty dose ladder")
	}
	var out []WindowPoint
	kernelSets := []struct {
		ks        *litho.Corner
		defocused bool
	}{}
	nom := p.Nominal()
	kernelSets = append(kernelSets, struct {
		ks        *litho.Corner
		defocused bool
	}{&nom, false})
	if withDefocus {
		def := p.Inner()
		def.Dose = 1 // the ladder supplies the dose
		kernelSets = append(kernelSets, struct {
			ks        *litho.Corner
			defocused bool
		}{&def, true})
	}
	for _, set := range kernelSets {
		for _, dose := range doses {
			if dose <= 0 {
				return nil, fmt.Errorf("metrics: non-positive dose %g", dose)
			}
			c := litho.Corner{Name: set.ks.Name, KS: set.ks.KS, Dose: dose}
			z, err := p.Print(maskImg, c)
			if err != nil {
				return nil, err
			}
			out = append(out, WindowPoint{
				Dose:      dose,
				Defocused: set.defocused,
				Area:      z.Sum(),
				L2:        L2(z, target),
				EPE:       EPE(target, z, epeSpacingPx, epeThrPx),
			})
		}
	}
	return out, nil
}

// PVBandLadder generalises Definition 2 to a ladder of dose excursions:
// for each delta it returns the XOR area between the (defocus, 1−delta)
// and (nominal focus, 1+delta) prints. The paper's PVB is the delta = 0.02
// rung.
func PVBandLadder(p *litho.Process, maskImg *grid.Mat, deltas []float64) ([]float64, error) {
	out := make([]float64, 0, len(deltas))
	for _, d := range deltas {
		if d < 0 || d >= 1 {
			return nil, fmt.Errorf("metrics: dose delta %g outside [0, 1)", d)
		}
		inner := litho.Corner{Name: "inner", KS: p.Sim.Model.Defocus, Dose: 1 - d}
		outer := litho.Corner{Name: "outer", KS: p.Sim.Model.Nominal, Dose: 1 + d}
		zIn, err := p.Print(maskImg, inner)
		if err != nil {
			return nil, err
		}
		zOut, err := p.Print(maskImg, outer)
		if err != nil {
			return nil, err
		}
		out = append(out, PVBand(zIn, zOut))
	}
	return out, nil
}
