package baselines

import (
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/metrics"
	"repro/internal/optics"
)

var (
	procOnce sync.Once
	procVal  *litho.Process
)

func process(t testing.TB) *litho.Process {
	t.Helper()
	procOnce.Do(func() {
		m, err := optics.BuildModel(optics.TestScale())
		if err != nil {
			panic(err)
		}
		procVal = litho.NewProcess(m)
	})
	return procVal
}

func testTarget() *grid.Mat {
	tgt := grid.NewMat(128, 128)
	geom.FillRect(tgt, geom.Rect{X0: 32, Y0: 40, X1: 88, Y1: 56}, 1)
	geom.FillRect(tgt, geom.Rect{X0: 32, Y0: 72, X1: 88, Y1: 88}, 1)
	return tgt
}

func TestPixelILTImprovesOverRawMask(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	res, err := PixelILT(p, tgt, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := metrics.Evaluate(p, tgt, tgt, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := metrics.Evaluate(p, res.Mask, tgt, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if opt.L2 >= raw.L2 {
		t.Errorf("pixel ILT did not improve L2: raw %v optimized %v", raw.L2, opt.L2)
	}
}

func TestAttentionMapValues(t *testing.T) {
	tgt := grid.NewMat(32, 32)
	geom.FillRect(tgt, geom.Rect{X0: 10, Y0: 10, X1: 20, Y1: 20}, 1)
	a := AttentionMap(tgt, 2, 1.5)
	if a.At(15, 15) != 1 {
		t.Errorf("deep interior attention %v, want 1", a.At(15, 15))
	}
	if a.At(2, 2) != 1 {
		t.Errorf("far field attention %v, want 1", a.At(2, 2))
	}
	if a.At(10, 15) != 2.5 {
		t.Errorf("boundary attention %v, want 2.5", a.At(10, 15))
	}
}

func TestAttentionILTRuns(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	res, err := AttentionILT(p, tgt, 15, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 15 {
		t.Fatalf("ran %d iterations", res.Iterations)
	}
	raw, err := metrics.Evaluate(p, tgt, tgt, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := metrics.Evaluate(p, res.Mask, tgt, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if opt.L2 >= raw.L2 {
		t.Errorf("attention ILT did not improve L2: raw %v optimized %v", raw.L2, opt.L2)
	}
}

func TestLevelSetILTImprovesAndPreservesTopologyLimits(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	res, err := LevelSetILT(LevelSetOptions{Process: p, Iters: 25}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 25 || res.ILTSeconds <= 0 {
		t.Fatalf("result bookkeeping: %d iters, %gs", res.Iterations, res.ILTSeconds)
	}
	first := res.History[0].Total()
	best := first
	for _, h := range res.History {
		if h.Total() < best {
			best = h.Total()
		}
	}
	if best >= first {
		t.Errorf("level-set loss never improved: first %g best %g", first, best)
	}

	raw, err := metrics.Evaluate(p, tgt, tgt, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := metrics.Evaluate(p, res.Mask, tgt, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if opt.L2 >= raw.L2 {
		t.Errorf("level-set ILT did not improve L2: raw %v optimized %v", raw.L2, opt.L2)
	}

	// Structural property: no SRAFs far from the main features (the level
	// set deforms boundaries but does not nucleate new shapes).
	far := geom.DilateBox(tgt, 16)
	for i := range res.Mask.Data {
		if far.Data[i] < 0.5 && res.Mask.Data[i] == 1 {
			t.Fatal("level-set baseline nucleated an SRAF — not expected of this parametrisation")
		}
	}
}

func TestLevelSetValidation(t *testing.T) {
	p := process(t)
	if _, err := LevelSetILT(LevelSetOptions{Process: nil, Iters: 1}, testTarget()); err == nil {
		t.Error("missing process accepted")
	}
	if _, err := LevelSetILT(LevelSetOptions{Process: p, Iters: -1}, testTarget()); err == nil {
		t.Error("negative iters accepted")
	}
	if _, err := LevelSetILT(LevelSetOptions{Process: p, Iters: 1}, grid.NewMat(96, 96)); err == nil {
		t.Error("non-power-of-two target accepted")
	}
}

func TestLevelSetRegionRespected(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	region := geom.DilateBox(tgt, 10)
	res, err := LevelSetILT(LevelSetOptions{Process: p, Iters: 10, Region: region}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range region.Data {
		if r < 0.5 && res.Mask.Data[i] != 0 {
			t.Fatal("level-set mask escaped the region")
		}
	}
}

func TestMaskFromPhiHeavisideShape(t *testing.T) {
	phi := grid.FromSlice(5, 1, []float64{-10, -1.5, 0, 1.5, 10})
	m := maskFromPhi(phi, 1.5)
	if m.Data[0] != 1 || m.Data[4] != 0 {
		t.Errorf("H_ε saturation wrong: %v", m.Data)
	}
	if m.Data[2] != 0.5 {
		t.Errorf("H_ε(0) = %v, want 0.5", m.Data[2])
	}
	if !(m.Data[0] >= m.Data[1] && m.Data[1] >= m.Data[2] && m.Data[2] >= m.Data[3] && m.Data[3] >= m.Data[4]) {
		t.Error("H_ε not monotone in −φ")
	}
}

func TestDeltaEpsIntegratesToOne(t *testing.T) {
	// ∫δ_ε = 1 (Riemann sum over a fine grid).
	const eps = 1.5
	sum := 0.0
	const dx = 1e-3
	for x := -2 * eps; x <= 2*eps; x += dx {
		sum += deltaEps(x, eps) * dx
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("∫δ_ε = %v, want ≈1", sum)
	}
}
