package baselines

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/telemetry"
)

// dilate/erode are thin aliases keeping call sites compact.
func dilate(m *grid.Mat, h int) *grid.Mat { return geom.DilateBox(m, h) }
func erode(m *grid.Mat, h int) *grid.Mat  { return geom.ErodeBox(m, h) }

// LevelSetOptions configures the GLS-ILT-style baseline.
type LevelSetOptions struct {
	Process *litho.Process
	// Iters is the iteration budget.
	Iters int
	// StepSize is the evolution step Δt (default 1 when zero).
	StepSize float64
	// Epsilon is the half-width (in φ units ≈ pixels) of the smoothed
	// Heaviside/delta pair (default 1.5 when zero).
	Epsilon float64
	// ReinitEvery re-initialises φ to a signed distance function every
	// this many iterations (default 20; 0 disables).
	ReinitEvery int
	// Region optionally confines evolution (Fig. 7 option 2 in Table III).
	Region *grid.Mat
	// Recorder receives per-iteration trace events (the same "iter" schema
	// as the core optimizer, with stage fixed at 0) and simulator phase
	// timers. Nil disables telemetry at zero cost.
	Recorder *telemetry.Recorder
}

// LevelSetResult mirrors core.Result for the level-set baseline.
type LevelSetResult struct {
	Mask       *grid.Mat
	History    []core.LossTerms
	Iterations int
	ILTSeconds float64
}

// LevelSetILT evolves a signed-distance level-set function φ so that the
// mask M = H_ε(−φ) minimises the Eq. (5) loss:
//
//	φ ← φ − Δt · V · |∇φ|,  V = −(dL/dM) · δ_ε(φ) direction
//
// with periodic signed-distance reinitialisation. The zero level can deform
// and merge but cannot spawn SRAFs far from existing features — the
// structural limitation (visible in GLS-ILT's PVB column) that motivates
// the paper's improved binary function.
func LevelSetILT(opt LevelSetOptions, target *grid.Mat) (*LevelSetResult, error) {
	if opt.Process == nil {
		return nil, fmt.Errorf("baselines: LevelSetOptions.Process is required")
	}
	if opt.Iters < 0 {
		return nil, fmt.Errorf("baselines: negative iteration budget %d", opt.Iters)
	}
	if target.W != target.H || target.W&(target.W-1) != 0 {
		return nil, fmt.Errorf("baselines: target must be square power-of-two, got %dx%d", target.W, target.H)
	}
	dt := opt.StepSize
	if dt == 0 {
		dt = 1
	}
	eps := opt.Epsilon
	if eps == 0 {
		eps = 1.5
	}
	reinit := opt.ReinitEvery
	if reinit == 0 {
		reinit = 20
	}

	p := opt.Process
	rec := opt.Recorder
	if rec.Enabled() && p.Sim.Recorder != rec {
		p.Sim.Recorder = rec
	}
	rec.Emit("stage.start", telemetry.Fields{
		"stage": 0, "scale": 1, "highres": false, "iters": opt.Iters,
	})
	start := time.Now()
	phi := geom.SignedDistance(target)
	res := &LevelSetResult{}

	best := phi.Clone()
	bestLoss := math.Inf(1)
	ztFull := target

	for it := 0; it < opt.Iters; it++ {
		iterStart := time.Now()
		if reinit > 0 && it > 0 && it%reinit == 0 {
			phi = geom.SignedDistance(maskFromPhi(phi, eps).Threshold(0.5))
		}
		m := maskFromPhi(phi, eps)

		fIn, zIn, err := p.PrintSigmoid(m, p.Inner(), false)
		if err != nil {
			return nil, err
		}
		fOut, zOut, err := p.PrintSigmoid(m, p.Outer(), false)
		if err != nil {
			return nil, err
		}
		terms, gZIn, gZOut := core.Loss(zIn, zOut, ztFull)
		res.History = append(res.History, terms)
		res.Iterations++
		if terms.Total() < bestLoss {
			bestLoss = terms.Total()
			best.CopyFrom(phi)
		}
		if rec.Enabled() { // guard: the Fields literal would allocate per iteration
			rec.Emit("iter", telemetry.Fields{
				"stage": 0, "iter": it, "scale": 1,
				"loss": terms.Total(), "l2": terms.L2, "pvb": terms.PVB, "penalty": terms.Penalty,
				"step": dt, "retries": 0, "sec": time.Since(iterStart).Seconds(),
			})
		}

		dIin := litho.ResistSigmoidGrad(zIn, p.Alpha)
		dIin.MulElem(gZIn)
		gIn, err := p.Sim.Gradient(fIn, dIin)
		if err != nil {
			return nil, err
		}
		dIout := litho.ResistSigmoidGrad(zOut, p.Alpha)
		dIout.MulElem(gZOut)
		gOut, err := p.Sim.Gradient(fOut, dIout)
		if err != nil {
			return nil, err
		}
		gIn.Add(gOut) // dL/dM

		// dL/dφ = −dL/dM · δ_ε(φ); advect with |∇φ| (≈1 near the front).
		gradMag := gradientMagnitude(phi)
		for i := range phi.Data {
			v := gIn.Data[i] * deltaEps(phi.Data[i], eps) * gradMag.Data[i]
			if opt.Region != nil && opt.Region.Data[i] < 0.5 {
				continue
			}
			phi.Data[i] += dt * v
		}
	}
	res.ILTSeconds = time.Since(start).Seconds()
	rec.Emit("stage.end", telemetry.Fields{
		"stage": 0, "iters_run": res.Iterations, "best_loss": bestLoss,
		"sec": res.ILTSeconds,
	})
	final := maskFromPhi(best, eps).Threshold(0.5)
	if opt.Region != nil {
		for i, r := range opt.Region.Data {
			if r < 0.5 {
				final.Data[i] = 0
			}
		}
	}
	res.Mask = final
	return res, nil
}

// maskFromPhi is the smoothed Heaviside M = H_ε(−φ): 1 deep inside
// (φ ≪ 0), 0 far outside, with a sin-smoothed transition of width 2ε.
func maskFromPhi(phi *grid.Mat, eps float64) *grid.Mat {
	m := grid.NewMat(phi.W, phi.H)
	for i, v := range phi.Data {
		x := -v // inside → positive
		switch {
		case x > eps:
			m.Data[i] = 1
		case x < -eps:
			m.Data[i] = 0
		default:
			v := 0.5 * (1 + x/eps + math.Sin(math.Pi*x/eps)/math.Pi)
			// Guard the ±ε endpoints against sin(π) rounding residue.
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			m.Data[i] = v
		}
	}
	return m
}

// deltaEps is the smoothed Dirac delta paired with maskFromPhi:
// δ_ε(φ) = dM/d(−φ) = H′_ε evaluated at −φ.
func deltaEps(phi, eps float64) float64 {
	x := -phi
	if x > eps || x < -eps {
		return 0
	}
	return 0.5 / eps * (1 + math.Cos(math.Pi*x/eps))
}

// gradientMagnitude returns |∇φ| by central differences (one-sided at the
// border).
func gradientMagnitude(phi *grid.Mat) *grid.Mat {
	w, h := phi.W, phi.H
	out := grid.NewMat(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			x0, x1 := x-1, x+1
			div := 2.0
			if x0 < 0 {
				x0, div = x, 1
			}
			if x1 >= w {
				x1, div = x, 1
			}
			gx := (phi.At(x1, y) - phi.At(x0, y)) / div
			y0, y1 := y-1, y+1
			div = 2.0
			if y0 < 0 {
				y0, div = y, 1
			}
			if y1 >= h {
				y1, div = y, 1
			}
			gy := (phi.At(x, y1) - phi.At(x, y0)) / div
			out.Set(x, y, math.Hypot(gx, gy))
		}
	}
	return out
}
