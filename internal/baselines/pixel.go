// Package baselines implements the comparison methods the paper evaluates
// against, to the extent they are reproducible without trained neural
// networks:
//
//   - PixelILT — conventional full-resolution pixel ILT (Poonawala-style
//     gradient descent with the T_R = 0 sigmoid binary function), the
//     "ILT w/o downsampling" column of Table I and the non-learned core
//     shared by Neural-ILT's refinement stage;
//   - AttentionILT — an A2-ILT-style variant: pixel ILT with a spatial
//     attention map concentrated on feature boundaries and 3×3 gradient
//     pooling against holes/outliers;
//   - LevelSetILT — a GLS-ILT-style mask parametrisation by a signed
//     distance level-set function evolved with the lithography gradient.
//
// Neural-ILT [4] and DevelSet [5] require trained models and training data;
// their table columns are reproduced from the paper's reported numbers (see
// internal/experiments) rather than reimplemented — DESIGN.md documents the
// substitution.
package baselines

import (
	"context"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/mask"
)

// PixelILT runs conventional pixel-based ILT: full resolution, T_R = 0,
// no smoothing pooling, no multi-level schedule.
func PixelILT(p *litho.Process, target *grid.Mat, iters int, region *grid.Mat) (*core.Result, error) {
	opts := core.DefaultOptions(p)
	opts.Binary = mask.Sigmoid{Beta: mask.DefaultBeta, TR: 0}
	opts.OutputTR = 0
	opts.SmoothWindow = 0
	opts.Region = region
	o, err := core.New(opts, target)
	if err != nil {
		return nil, err
	}
	return o.Run(context.Background(), []core.Stage{{Scale: 1, Iters: iters}})
}

// AttentionILT runs the A2-ILT-style baseline: conventional pixel ILT whose
// gradient is (a) smoothed by a 3×3 stride-1 average pool (the hole/outlier
// suppression of [7], [8]) and (b) modulated by a spatial attention map that
// boosts the band around feature boundaries, standing in for the learned
// attention of A2-ILT. bandPx sets the half-width of the boosted band.
func AttentionILT(p *litho.Process, target *grid.Mat, iters, bandPx int, region *grid.Mat) (*core.Result, error) {
	if bandPx < 1 {
		bandPx = 1
	}
	attention := AttentionMap(target, bandPx, 1.5)
	opts := core.DefaultOptions(p)
	opts.Binary = mask.Sigmoid{Beta: mask.DefaultBeta, TR: 0}
	opts.OutputTR = 0
	opts.SmoothWindow = 0
	opts.Region = region
	opts.GradHook = func(g *grid.Mat, st core.Stage) {
		sm := grid.SmoothPool(g, 3)
		copy(g.Data, sm.Data)
		if g.W == attention.W {
			g.MulElem(attention)
		}
	}
	o, err := core.New(opts, target)
	if err != nil {
		return nil, err
	}
	return o.Run(context.Background(), []core.Stage{{Scale: 1, Iters: iters}})
}

// AttentionMap builds the boundary-band attention: 1 everywhere, 1+boost on
// pixels within bandPx of a feature edge (inside or outside).
func AttentionMap(target *grid.Mat, bandPx int, boost float64) *grid.Mat {
	dil := dilate(target, bandPx)
	ero := erode(target, bandPx)
	a := grid.NewMat(target.W, target.H)
	for i := range a.Data {
		a.Data[i] = 1
		if dil.Data[i] >= 0.5 && ero.Data[i] < 0.5 {
			a.Data[i] += boost
		}
	}
	return a
}
